// Exercises every dbtune_analyze check against the fixture files under
// tools/lint_fixtures/ (each check firing, each near-miss staying quiet,
// each suppression form) and self-checks that the shipped src/ and
// tools/ trees analyze clean. The legacy-rule tests carry the exact
// expectations of the retired dbtune_lint suite, so migration to the
// token pipeline is pinned to produce identical findings. Paths come
// from compile definitions set in tests/CMakeLists.txt.

#include "dbtune_analyze_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using dbtune_analyze::AnalyzeFile;
using dbtune_analyze::AnalyzeSource;
using dbtune_analyze::AnalyzeTree;
using dbtune_analyze::ApplyBaseline;
using dbtune_analyze::BaselineEntry;
using dbtune_analyze::CheckInfo;
using dbtune_analyze::Checks;
using dbtune_analyze::Diagnostic;
using dbtune_analyze::FormatDiagnostic;
using dbtune_analyze::ParseBaselineText;
using dbtune_analyze::ReportJson;

std::string FixturePath(const std::string& name) {
  return std::string(DBTUNE_LINT_FIXTURE_DIR) + "/" + name;
}

int CountCheck(const std::vector<Diagnostic>& diagnostics,
               const std::string& check) {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.check == check; }));
}

// ---------------------------------------------------------------------------
// Legacy-rule parity (expectations carried over verbatim from test_lint)
// ---------------------------------------------------------------------------

TEST(AnalyzeLegacyTest, RandomSeedCheckFires) {
  const auto findings = AnalyzeFile(FixturePath("bad_random.cc"),
                                    "bad_random.cc");
  // std::rand, std::srand, time(nullptr), std::random_device.
  EXPECT_EQ(CountCheck(findings, "random-seed"), 4);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.check, "random-seed") << FormatDiagnostic(d);
  }
}

TEST(AnalyzeLegacyTest, RandomSeedCheckSkipsUtilRandom) {
  // The same content under src/util/random is the one sanctioned home of
  // raw randomness primitives.
  const auto findings = AnalyzeFile(FixturePath("bad_random.cc"),
                                    "util/random.cc");
  EXPECT_EQ(CountCheck(findings, "random-seed"), 0);
}

TEST(AnalyzeLegacyTest, NakedNewCheckFiresButNotOnDeletedFunctions) {
  const auto findings = AnalyzeFile(FixturePath("bad_new.cc"), "bad_new.cc");
  EXPECT_EQ(CountCheck(findings, "naked-new"), 2);  // one new, one delete
}

TEST(AnalyzeLegacyTest, UsingNamespaceStdCheckFires) {
  const auto findings = AnalyzeFile(FixturePath("bad_namespace.cc"),
                                    "bad_namespace.cc");
  EXPECT_EQ(CountCheck(findings, "using-namespace-std"), 1);
}

TEST(AnalyzeLegacyTest, IncludeGuardCheckFires) {
  const auto findings = AnalyzeFile(FixturePath("bad_guard.h"), "bad_guard.h");
  ASSERT_EQ(CountCheck(findings, "include-guard"), 1);
  EXPECT_NE(findings[0].message.find("DBTUNE_BAD_GUARD_H_"),
            std::string::npos);
}

TEST(AnalyzeLegacyTest, IncludeGuardUsesRelativePath) {
  const std::string content =
      "#ifndef DBTUNE_UTIL_STATUS_H_\n#define DBTUNE_UTIL_STATUS_H_\n"
      "#endif\n";
  EXPECT_TRUE(AnalyzeSource("x.h", "util/status.h", content).empty());
  // Same content under another path must demand that path's guard.
  EXPECT_EQ(AnalyzeSource("x.h", "core/advisor.h", content).size(), 1u);
}

TEST(AnalyzeLegacyTest, IncludeGuardAcceptsRootPrefixedForm) {
  // Headers outside src/ (tools/, tests/) carry a root-qualified guard:
  // both DBTUNE_FOO_H_ and DBTUNE_TOOLS_FOO_H_ must pass under
  // guard_prefix "TOOLS_", and a wrong guard must still fail.
  const std::string plain = "#ifndef DBTUNE_FOO_H_\n#define DBTUNE_FOO_H_\n#endif\n";
  const std::string prefixed =
      "#ifndef DBTUNE_TOOLS_FOO_H_\n#define DBTUNE_TOOLS_FOO_H_\n#endif\n";
  const std::string wrong = "#ifndef FOO_H\n#define FOO_H\n#endif\n";
  EXPECT_TRUE(AnalyzeSource("foo.h", "foo.h", plain, "TOOLS_").empty());
  EXPECT_TRUE(AnalyzeSource("foo.h", "foo.h", prefixed, "TOOLS_").empty());
  EXPECT_EQ(AnalyzeSource("foo.h", "foo.h", wrong, "TOOLS_").size(), 1u);
}

TEST(AnalyzeLegacyTest, IostreamCheckFiresOutsideLogging) {
  const auto findings = AnalyzeFile(FixturePath("bad_iostream.cc"),
                                    "bad_iostream.cc");
  EXPECT_EQ(CountCheck(findings, "iostream"), 1);
}

TEST(AnalyzeLegacyTest, IostreamAllowedInUtilLogging) {
  const auto findings = AnalyzeFile(FixturePath("bad_iostream.cc"),
                                    "util/logging.cc");
  EXPECT_EQ(CountCheck(findings, "iostream"), 0);
}

TEST(AnalyzeLegacyTest, RawTimingCheckFires) {
  const auto findings = AnalyzeFile(FixturePath("bad_timing.cc"),
                                    "bad_timing.cc");
  // steady_clock, system_clock, high_resolution_clock; the allow() line
  // is suppressed.
  EXPECT_EQ(CountCheck(findings, "raw-timing"), 3);
}

TEST(AnalyzeLegacyTest, RawTimingAllowedInObsAndBenchUtil) {
  // src/obs is the sanctioned clock location; bench_util.h wraps
  // google-benchmark timing.
  EXPECT_EQ(CountCheck(AnalyzeFile(FixturePath("bad_timing.cc"),
                                   "obs/clock.cc"),
                       "raw-timing"),
            0);
  EXPECT_EQ(CountCheck(AnalyzeFile(FixturePath("bad_timing.cc"),
                                   "bench_util.h"),
                       "raw-timing"),
            0);
}

TEST(AnalyzeLegacyTest, PredictInLoopCheckFiresInOptimizerFiles) {
  const auto findings =
      AnalyzeFile(FixturePath("optimizer/bad_predict_loop.cc"),
                  "optimizer/bad_predict_loop.cc");
  // Braced for body, while body, braceless body; the out-of-loop call,
  // the allow() line, and the batched call are exempt.
  EXPECT_EQ(CountCheck(findings, "predict-in-loop"), 3);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.check, "predict-in-loop") << FormatDiagnostic(d);
  }
}

TEST(AnalyzeLegacyTest, PredictInLoopCheckOnlyAppliesUnderOptimizer) {
  // The same content outside src/optimizer (e.g. a surrogate internals
  // file) is allowed to issue scalar predictions in loops.
  const auto findings =
      AnalyzeFile(FixturePath("optimizer/bad_predict_loop.cc"),
                  "surrogate/bad_predict_loop.cc");
  EXPECT_EQ(CountCheck(findings, "predict-in-loop"), 0);
}

TEST(AnalyzeLegacyTest, PredictInLoopTracksNestingAcrossLines) {
  // A call after every loop has closed must not fire; one in a nested
  // loop across multiple lines must.
  const std::string content =
      "void F(const M& m, const C& c) {\n"
      "  for (size_t i = 0; i < 3; ++i) {\n"
      "    if (c.ok()) {\n"
      "      m.PredictMeanVar(c[i], &a, &b);\n"
      "    }\n"
      "  }\n"
      "  m.PredictMeanVar(c[0], &a, &b);\n"
      "}\n";
  const auto findings = AnalyzeSource("x.cc", "optimizer/x.cc", content);
  EXPECT_EQ(CountCheck(findings, "predict-in-loop"), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].line, 4);
}

TEST(AnalyzeLegacyTest, GpConstructionCheckFiresInOptimizerFiles) {
  const auto findings =
      AnalyzeFile(FixturePath("optimizer/bad_gp_construction.cc"),
                  "optimizer/bad_gp_construction.cc");
  // Direct ctor, make_unique, and the sparse class; the options struct,
  // the factory call, and the allow() line are exempt.
  EXPECT_EQ(CountCheck(findings, "gp-construction"), 3);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.check, "gp-construction") << FormatDiagnostic(d);
  }
}

TEST(AnalyzeLegacyTest, GpConstructionCheckOnlyAppliesUnderOptimizer) {
  // surrogate/ (and tests, benches, the factory itself) may construct
  // the GP classes directly.
  const auto findings =
      AnalyzeFile(FixturePath("optimizer/bad_gp_construction.cc"),
                  "surrogate/bad_gp_construction.cc");
  EXPECT_EQ(CountCheck(findings, "gp-construction"), 0);
}

TEST(AnalyzeLegacyTest, MetricsExportCheckFiresOutsideObs) {
  const auto findings = AnalyzeFile(FixturePath("bad_metrics_export.cc"),
                                    "bad_metrics_export.cc");
  // The MetricsSnapshot forward declaration plus two ToJson mentions;
  // the allow() line is suppressed.
  EXPECT_EQ(CountCheck(findings, "metrics-export"), 3);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.check, "metrics-export") << FormatDiagnostic(d);
  }
}

TEST(AnalyzeLegacyTest, MetricsExportCheckAllowedInObs) {
  // src/obs owns the snapshot/serialization surface.
  const auto findings = AnalyzeFile(FixturePath("bad_metrics_export.cc"),
                                    "obs/metrics_export.cc");
  EXPECT_EQ(CountCheck(findings, "metrics-export"), 0);
}

TEST(AnalyzeLegacyTest, AllowEscapeHatchSuppressesEveryCheck) {
  EXPECT_TRUE(AnalyzeFile(FixturePath("allowed.cc"), "allowed.cc").empty());
  EXPECT_TRUE(
      AnalyzeFile(FixturePath("allowed_guard.h"), "allowed_guard.h").empty());
}

TEST(AnalyzeLegacyTest, AllowIsPerCheckNotBlanket) {
  // An allow() for one check must not mask a different check on that line.
  const std::string content =
      "int* p = new int(std::rand());  // dbtune-lint: allow(naked-new)\n";
  const auto findings = AnalyzeSource("x.cc", "x.cc", content);
  EXPECT_EQ(CountCheck(findings, "naked-new"), 0);
  EXPECT_EQ(CountCheck(findings, "random-seed"), 1);
}

TEST(AnalyzeLegacyTest, CommentsAndStringsAreNotScanned) {
  EXPECT_TRUE(AnalyzeFile(FixturePath("clean.h"), "clean.h").empty());
  const std::string content =
      "// a new idea about delete and rand()\n"
      "/* using namespace std inside a block comment\n"
      "   spanning lines with new */\n"
      "const char* kText = \"new delete time( rand()\";\n";
  EXPECT_TRUE(AnalyzeSource("x.cc", "x.cc", content).empty());
}

TEST(AnalyzeLegacyTest, RawStringsAreNotScanned) {
  // The old line-regex linter never understood raw strings; the token
  // pipeline must skip their bodies entirely.
  const std::string content =
      "const char* kJson = R\"json(\n"
      "  {\"cmd\": \"new delete rand() using namespace std\"}\n"
      ")json\";\n"
      "int x = 0;\n";
  EXPECT_TRUE(AnalyzeSource("x.cc", "x.cc", content).empty());
}

// ---------------------------------------------------------------------------
// New determinism/concurrency checks
// ---------------------------------------------------------------------------

TEST(AnalyzeTest, ThreadLocalCaptureFiresOnPr6BugShape) {
  const auto findings = AnalyzeFile(FixturePath("bad_thread_local_capture.cc"),
                                    "bad_thread_local_capture.cc");
  // One through ParallelFor (the PR 6 crash), one through Submit.
  ASSERT_EQ(CountCheck(findings, "thread-local-capture"), 2);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("k_star"), std::string::npos);
  EXPECT_EQ(findings[0].severity, "error");
}

TEST(AnalyzeTest, ThreadLocalCaptureNearMissesStayQuiet) {
  // Pointer captured by value (the PR 6 fix) and a thread_local declared
  // inside the lambda body are both sanctioned.
  const auto findings = AnalyzeFile(FixturePath("near_thread_local_capture.cc"),
                                    "near_thread_local_capture.cc");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, UnorderedIterationFiresOnAccumulationAndOutput) {
  const auto findings = AnalyzeFile(FixturePath("bad_unordered_iteration.cc"),
                                    "bad_unordered_iteration.cc");
  // One float reduction, one push_back emission.
  EXPECT_EQ(CountCheck(findings, "unordered-iteration"), 2);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AnalyzeTest, UnorderedIterationNearMissesStayQuiet) {
  // Sorted snapshot, point lookup, and std::map iteration are all fine.
  const auto findings = AnalyzeFile(FixturePath("near_unordered_iteration.cc"),
                                    "near_unordered_iteration.cc");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, ParallelReductionOrderFires) {
  const auto findings = AnalyzeFile(FixturePath("bad_parallel_reduction.cc"),
                                    "bad_parallel_reduction.cc");
  // One += through ParallelFor, one -= through Submit.
  EXPECT_EQ(CountCheck(findings, "parallel-reduction-order"), 2);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AnalyzeTest, ParallelReductionNearMissStaysQuiet) {
  // Lambda-local accumulator deposited into a chunk-indexed slot, reduced
  // chunk-ascending on one thread — the repo's sanctioned pattern.
  const auto findings = AnalyzeFile(FixturePath("near_parallel_reduction.cc"),
                                    "near_parallel_reduction.cc");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, IgnoredStatusFiresOnAllDiscardForms) {
  const auto findings = AnalyzeFile(FixturePath("bad_ignored_status.cc"),
                                    "bad_ignored_status.cc");
  // Bare statement, (void), static_cast<void>, comma operator.
  EXPECT_EQ(CountCheck(findings, "ignored-status"), 4);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(AnalyzeTest, IgnoredStatusNearMissesStayQuiet) {
  // Stored, checked inline, macro-wrapped, and returned Status values.
  const auto findings = AnalyzeFile(FixturePath("near_ignored_status.cc"),
                                    "near_ignored_status.cc");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, MutexGuardGapFires) {
  const auto findings = AnalyzeFile(FixturePath("bad_mutex_guard_gap.h"),
                                    "bad_mutex_guard_gap.h");
  // Peek() reads value_ without the mutex; Increment() holds it.
  EXPECT_EQ(CountCheck(findings, "mutex-guard-gap"), 1);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(AnalyzeTest, MutexGuardGapRespectsRequiresAfterAttribute) {
  // `[[nodiscard]]` before the signature must not make the body parse as
  // a lambda (which would skip the DBTUNE_REQUIRES annotation scan).
  const std::string content =
      "struct S {\n"
      "  Mutex mu;\n"
      "  int value DBTUNE_GUARDED_BY(mu);\n"
      "};\n"
      "[[nodiscard]] int Read(S* s) DBTUNE_REQUIRES(s->mu) {\n"
      "  return s->value;\n"
      "}\n";
  const auto findings = AnalyzeSource("x.cc", "x.cc", content);
  EXPECT_EQ(CountCheck(findings, "mutex-guard-gap"), 0);
}

TEST(AnalyzeTest, MutexGuardGapNearMissesStayQuiet) {
  // MutexLock in scope and DBTUNE_REQUIRES on the signature both count.
  const auto findings = AnalyzeFile(FixturePath("near_mutex_guard_gap.h"),
                                    "near_mutex_guard_gap.h");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, UncheckedWriteFiresOnAllDiscardFormsAndOfstream) {
  const auto findings =
      AnalyzeFile(FixturePath("store/bad_unchecked_write.cc"),
                  "store/bad_unchecked_write.cc");
  // fwrite and fprintf bare statements, (void) fflush, fputs behind the
  // comma operator, static_cast<void> fclose, and the never-checked
  // ofstream declaration.
  EXPECT_EQ(CountCheck(findings, "unchecked-write"), 6);
  EXPECT_EQ(findings.size(), 6u);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.severity, "error") << FormatDiagnostic(d);
  }
}

TEST(AnalyzeTest, UncheckedWriteNearMissesStayQuiet) {
  // Stored/tested results, stderr diagnostics, a good()-checked
  // ofstream, and the allow() escape hatch are all sanctioned.
  const auto findings =
      AnalyzeFile(FixturePath("store/near_unchecked_write.cc"),
                  "store/near_unchecked_write.cc");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, UncheckedWriteOnlyAppliesOnPersistencePaths) {
  // The same content outside store//obs//benchmk/ and the artifact CLIs
  // may write best-effort (e.g. optimizer scratch output).
  const auto findings =
      AnalyzeFile(FixturePath("store/bad_unchecked_write.cc"),
                  "optimizer/scratch_io.cc");
  EXPECT_EQ(CountCheck(findings, "unchecked-write"), 0);
}

TEST(AnalyzeTest, UncheckedWriteCoversArtifactClis) {
  // The report/analyzer CLIs write CI artifacts; their relpaths are in
  // scope wherever the tools tree is rooted.
  const std::string content =
      "#include <cstdio>\n"
      "void Emit(std::FILE* f) { std::fflush(f); }\n";
  EXPECT_EQ(CountCheck(AnalyzeSource("x.cc", "dbtune_report.cc", content),
                       "unchecked-write"),
            1);
  EXPECT_EQ(
      CountCheck(AnalyzeSource("x.cc", "core/tuning_session.cc", content),
                 "unchecked-write"),
      0);
}

TEST(AnalyzeTest, BlockingInSchedulerFiresOnEveryBlockingForm) {
  const auto findings = AnalyzeFile(FixturePath("serve/bad_blocking.cc"),
                                    "serve/bad_blocking.cc");
  // fopen, fwrite, fclose, ofstream, ifstream, sleep_for, usleep,
  // WaitAll; the fflush line carries an allow() and stays quiet.
  EXPECT_EQ(CountCheck(findings, "blocking-in-scheduler"), 8);
  EXPECT_EQ(findings.size(), 8u);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.severity, "error") << FormatDiagnostic(d);
  }
}

TEST(AnalyzeTest, BlockingInSchedulerNearMissesStayQuiet) {
  // Store-API persistence, ParallelFor as the join, banned vocabulary in
  // comments/strings, and a plain variable named sleep are all fine.
  const auto findings = AnalyzeFile(FixturePath("serve/near_blocking.cc"),
                                    "serve/near_blocking.cc");
  for (const Diagnostic& d : findings) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, BlockingInSchedulerOnlyAppliesUnderServe) {
  // The same content outside serve/ (the store itself, a CLI) is the
  // sanctioned home of file I/O and joins.
  const auto findings = AnalyzeFile(FixturePath("serve/bad_blocking.cc"),
                                    "store/scratch_io.cc");
  EXPECT_EQ(CountCheck(findings, "blocking-in-scheduler"), 0);
}

TEST(AnalyzeTest, IgnoredStatusRespectsLocalNonStatusOverride) {
  // A file whose own Build() returns int must not inherit some other
  // file's Result-returning Build from the tree-wide index — pinned here
  // at the per-file level where both declarations are visible.
  const std::string content =
      "struct Status { static Status OK(); };\n"
      "struct T { int Build(int v); Status Commit(); };\n"
      "int T::Build(int v) { return v; }\n"
      "void F(T* t) {\n"
      "  t->Build(1);\n"    // int-returning: fine to discard
      "  t->Commit();\n"    // Status-returning: flagged
      "}\n";
  const auto findings = AnalyzeSource("x.cc", "x.cc", content);
  EXPECT_EQ(CountCheck(findings, "ignored-status"), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].line, 6);
}

// ---------------------------------------------------------------------------
// Suppressions, baseline, report
// ---------------------------------------------------------------------------

TEST(AnalyzeTest, AllowFileSuppressesOneCheckFileWide) {
  const std::string content =
      "// dbtune-lint: allow-file(naked-new)\n"
      "int* a = new int(1);\n"
      "int* b = new int(std::rand());\n";
  const auto findings = AnalyzeSource("x.cc", "x.cc", content);
  // Both news are suppressed file-wide; the unrelated check still fires.
  EXPECT_EQ(CountCheck(findings, "naked-new"), 0);
  EXPECT_EQ(CountCheck(findings, "random-seed"), 1);
}

TEST(AnalyzeTest, BaselineParsesCommentsLinesAndFiles) {
  const std::string text =
      "# header comment\n"
      "\n"
      "src/core/foo.cc:12 naked-new\n"
      "src/core/bar.cc ignored-status  # whole file\n";
  const auto entries = ParseBaselineText(text);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, "src/core/foo.cc");
  EXPECT_EQ(entries[0].line, 12);
  EXPECT_EQ(entries[0].check, "naked-new");
  EXPECT_EQ(entries[1].path, "src/core/bar.cc");
  EXPECT_EQ(entries[1].line, 0);
  EXPECT_EQ(entries[1].check, "ignored-status");
}

TEST(AnalyzeTest, BaselineMarksOnlyMatchingDiagnostics) {
  std::vector<Diagnostic> diagnostics = {
      {"src/a.cc", 5, "naked-new", "warning", "m", "h", false},
      {"src/a.cc", 9, "naked-new", "warning", "m", "h", false},
      {"src/b.cc", 3, "ignored-status", "error", "m", "h", false},
  };
  const std::vector<BaselineEntry> baseline = {
      {"src/a.cc", 5, "naked-new"},      // exact line
      {"src/b.cc", 0, "ignored-status"}  // whole file
  };
  EXPECT_EQ(ApplyBaseline(baseline, &diagnostics), 2u);
  EXPECT_TRUE(diagnostics[0].baselined);
  EXPECT_FALSE(diagnostics[1].baselined);  // line 9 is not baselined
  EXPECT_TRUE(diagnostics[2].baselined);
}

TEST(AnalyzeTest, JsonReportCarriesRegistrySummaryAndFindings) {
  std::vector<Diagnostic> diagnostics = {
      {"src/a.cc", 5, "naked-new", "warning", "msg \"quoted\"", "hint", true},
      {"src/b.cc", 3, "thread-local-capture", "error", "m", "h", false},
  };
  const std::string json = ReportJson(diagnostics, 7);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"dbtune_analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"files\":7"), std::string::npos);
  EXPECT_NE(json.find("\"findings\":2"), std::string::npos);
  EXPECT_NE(json.find("\"baselined\":1"), std::string::npos);
  EXPECT_NE(json.find("\"new\":1"), std::string::npos);
  EXPECT_NE(json.find("\"msg \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"thread-local-capture\""),
            std::string::npos);
  // Every registered check id is documented in the report header.
  for (const CheckInfo& check : Checks()) {
    EXPECT_NE(json.find(std::string("\"id\":\"") + check.id + "\""),
              std::string::npos)
        << check.id;
  }
}

TEST(AnalyzeTest, RegistryMetadataIsComplete) {
  const std::vector<std::string> required = {
      "thread-local-capture", "unordered-iteration", "parallel-reduction-order",
      "ignored-status",       "mutex-guard-gap",     "random-seed",
      "naked-new",            "using-namespace-std", "include-guard",
      "iostream",             "raw-timing",          "predict-in-loop",
      "gp-construction",      "metrics-export",      "unchecked-write",
      "blocking-in-scheduler"};
  for (const std::string& id : required) {
    const auto it = std::find_if(
        Checks().begin(), Checks().end(),
        [&](const CheckInfo& check) { return id == check.id; });
    ASSERT_NE(it, Checks().end()) << id;
    EXPECT_TRUE(std::string(it->severity) == "error" ||
                std::string(it->severity) == "warning")
        << id;
    EXPECT_FALSE(std::string(it->summary).empty()) << id;
    EXPECT_FALSE(std::string(it->fix_hint).empty()) << id;
  }
}

// ---------------------------------------------------------------------------
// Whole-tree runs
// ---------------------------------------------------------------------------

TEST(AnalyzeTest, FixtureTreeFindsAllViolations) {
  const auto report = AnalyzeTree(DBTUNE_LINT_FIXTURE_DIR);
  const auto& findings = report.diagnostics;
  // Legacy counts, carried over verbatim.
  EXPECT_EQ(CountCheck(findings, "random-seed"), 4);
  EXPECT_EQ(CountCheck(findings, "naked-new"), 2);
  EXPECT_EQ(CountCheck(findings, "using-namespace-std"), 1);
  EXPECT_EQ(CountCheck(findings, "include-guard"), 1);
  EXPECT_EQ(CountCheck(findings, "iostream"), 1);
  EXPECT_EQ(CountCheck(findings, "raw-timing"), 3);
  EXPECT_EQ(CountCheck(findings, "predict-in-loop"), 3);
  EXPECT_EQ(CountCheck(findings, "gp-construction"), 3);
  EXPECT_EQ(CountCheck(findings, "metrics-export"), 3);
  // New determinism checks: true positives only, near-misses quiet.
  EXPECT_EQ(CountCheck(findings, "thread-local-capture"), 2);
  EXPECT_EQ(CountCheck(findings, "unordered-iteration"), 2);
  EXPECT_EQ(CountCheck(findings, "parallel-reduction-order"), 2);
  EXPECT_EQ(CountCheck(findings, "ignored-status"), 4);
  EXPECT_EQ(CountCheck(findings, "mutex-guard-gap"), 1);
  // Persistence checks: the store/ fixture subdirectory is in scope.
  EXPECT_EQ(CountCheck(findings, "unchecked-write"), 6);
  // Scheduler checks: the serve/ fixture subdirectory is in scope.
  EXPECT_EQ(CountCheck(findings, "blocking-in-scheduler"), 8);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.path.find("near_"), std::string::npos) << FormatDiagnostic(d);
  }
}

// The shipped trees must analyze clean — the same invariant the
// `analyze_src` ctest enforces via the CLI, checked here through the API
// so a failure prints the precise findings.
TEST(AnalyzeTest, ShippedSourceTreeIsClean) {
  const auto report = AnalyzeTree(DBTUNE_ANALYZE_SRC_DIR);
  for (const Diagnostic& d : report.diagnostics) {
    ADD_FAILURE() << FormatDiagnostic(d);
  }
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_GT(report.files_analyzed, 100u);
}

TEST(AnalyzeTest, ToolsTreeIsClean) {
  // The analyzer must not flag its own implementation (lint_fixtures/ is
  // skipped as a subdirectory; the fixtures are covered above).
  const auto report = AnalyzeTree(DBTUNE_ANALYZE_TOOLS_DIR);
  for (const Diagnostic& d : report.diagnostics) {
    ADD_FAILURE() << FormatDiagnostic(d);
  }
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_GT(report.files_analyzed, 3u);
}

}  // namespace
