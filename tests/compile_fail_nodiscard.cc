// Negative compile test: Status and Result<T> are [[nodiscard]], so
// silently dropping either return value must NOT compile. The ctest
// `nodiscard_compile_fail` runs the compiler with -fsyntax-only
// -Werror=unused-result over this file and asserts failure (WILL_FAIL),
// proving the enforcement the DBTUNE_WERROR=ON build relies on.

#include "util/status.h"

namespace {

dbtune::Status MightFail() { return dbtune::Status::Internal("boom"); }

dbtune::Result<int> MightProduce() { return 7; }

}  // namespace

int main() {
  MightFail();     // error: ignoring [[nodiscard]] Status
  MightProduce();  // error: ignoring [[nodiscard]] Result<int>
  return 0;
}
