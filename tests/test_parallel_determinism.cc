// The determinism contract of the parallel execution layer: every
// parallelized component must produce bit-identical results at pool size
// 1 and pool size N. These tests sweep the process-wide pool size and
// compare full outputs with exact equality.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuning_session.h"
#include "knobs/catalog.h"
#include "knobs/knob.h"
#include "optimizer/gp_bo.h"
#include "optimizer/projected_optimizer.h"
#include "optimizer/smac.h"
#include "optimizer/turbo.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/random_forest.h"
#include "surrogate/sparse_gaussian_process.h"
#include "surrogate/surrogate_factory.h"
#include "transfer/repository.h"
#include "transfer/rgpe.h"
#include "util/matrix.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

// Restores the previous pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(size_t n)
      : original_(ExecutionContext::Get().num_threads()) {
    ExecutionContext::Get().SetNumThreads(n);
  }
  ~PoolSizeGuard() { ExecutionContext::Get().SetNumThreads(original_); }

 private:
  size_t original_;
};

FeatureMatrix MakeInputs(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x(n, std::vector<double>(d));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  return x;
}

std::vector<double> MakeTargets(const FeatureMatrix& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double s = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      s += std::sin(3.0 * row[j]) * static_cast<double>(j + 1);
    }
    y.push_back(s);
  }
  return y;
}

ConfigurationSpace MakeContinuousSpace(size_t d) {
  std::vector<Knob> knobs;
  for (size_t i = 0; i < d; ++i) {
    std::string name = "x";
    name += std::to_string(i);  // avoids gcc-12 -Wrestrict false positive
    knobs.push_back(Knob::Continuous(name, 0.0, 1.0, 0.5));
  }
  return ConfigurationSpace(std::move(knobs));
}

TEST(ParallelDeterminismTest, MatrixMultiplyMatchesAtAnyPoolSize) {
  const size_t n = 160;  // past the parallel-dispatch threshold
  Matrix a(n, n), b(n, n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = rng.Uniform(-1.0, 1.0);
      b(i, j) = rng.Uniform(-1.0, 1.0);
    }
  }
  std::vector<double> sequential, parallel;
  {
    PoolSizeGuard guard(1);
    sequential = a.Multiply(b).data();
  }
  {
    PoolSizeGuard guard(4);
    parallel = a.Multiply(b).data();
  }
  EXPECT_EQ(sequential, parallel);
}

TEST(ParallelDeterminismTest, GaussianProcessFitAndPredict) {
  // n is past the scalar-predict ParallelFor grain (64) so the kernel
  // row actually dispatches to pool workers (regression: workers once
  // wrote their own empty thread_local scratch instead of the caller's).
  const FeatureMatrix x = MakeInputs(160, 5, 11);
  const std::vector<double> y = MakeTargets(x);
  const FeatureMatrix queries = MakeInputs(20, 5, 13);

  auto run = [&](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    GaussianProcess gp(std::make_unique<Matern52Kernel>());
    EXPECT_TRUE(gp.Fit(x, y).ok());
    std::vector<double> out = {gp.log_marginal_likelihood()};
    for (const auto& q : queries) {
      double mean = 0.0, var = 0.0;
      gp.PredictMeanVar(q, &mean, &var);
      out.push_back(mean);
      out.push_back(var);
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

// The sparse tier parallelizes inducing selection, the chunked assembly
// of the m×m system, and batched prediction; all of it must be bitwise
// reproducible across pool sizes 1/2/8 (the acceptance sweep for
// DBTUNE_NUM_THREADS).
TEST(ParallelDeterminismTest, SparseGaussianProcessFitAndPredict) {
  const FeatureMatrix x = MakeInputs(300, 5, 59);
  const std::vector<double> y = MakeTargets(x);
  const FeatureMatrix queries = MakeInputs(40, 5, 61);

  auto run = [&](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    SparseGaussianProcess gp(std::make_unique<Matern52Kernel>());
    EXPECT_TRUE(gp.Fit(x, y).ok());
    std::vector<double> out = {gp.log_marginal_likelihood()};
    for (size_t id : gp.inducing_indices()) {
      out.push_back(static_cast<double>(id));
    }
    for (const auto& q : queries) {
      double mean = 0.0, var = 0.0;
      gp.PredictMeanVar(q, &mean, &var);
      out.push_back(mean);
      out.push_back(var);
    }
    std::vector<double> means, vars;
    gp.PredictMeanVarBatch(queries, &means, &vars);
    out.insert(out.end(), means.begin(), means.end());
    out.insert(out.end(), vars.begin(), vars.end());
    return out;
  };
  const std::vector<double> pool1 = run(1);
  EXPECT_EQ(pool1, run(2));
  EXPECT_EQ(pool1, run(8));
}

TEST(ParallelDeterminismTest, RandomForestFitAndPredict) {
  const FeatureMatrix x = MakeInputs(120, 6, 17);
  const std::vector<double> y = MakeTargets(x);
  const FeatureMatrix queries = MakeInputs(30, 6, 19);

  auto run = [&](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    RandomForestOptions options;
    options.num_trees = 50;
    options.seed = 29;
    RandomForest forest(options);
    EXPECT_TRUE(forest.Fit(x, y).ok());
    std::vector<double> out = forest.SplitCountImportance();
    const std::vector<double> impurity = forest.ImpurityImportance();
    out.insert(out.end(), impurity.begin(), impurity.end());
    for (const auto& q : queries) {
      double mean = 0.0, var = 0.0;
      forest.PredictMeanVar(q, &mean, &var);
      out.push_back(mean);
      out.push_back(var);
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

// Full optimizer loops: suggestions must be identical configuration by
// configuration, which exercises parallel surrogate fits, posterior
// queries, and acquisition scoring end to end.
template <typename MakeOptimizer>
void ExpectIdenticalTrajectories(MakeOptimizer make) {
  auto run = [&](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    const ConfigurationSpace space = MakeContinuousSpace(4);
    std::unique_ptr<Optimizer> optimizer = make(space);
    std::vector<double> trace;
    for (int i = 0; i < 20; ++i) {
      const Configuration c = optimizer->Suggest();
      double score = 0.0;
      for (size_t j = 0; j < c.size(); ++j) {
        score -= (c[j] - 0.6) * (c[j] - 0.6);
      }
      optimizer->Observe(c, score);
      for (size_t j = 0; j < c.size(); ++j) trace.push_back(c[j]);
    }
    return trace;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelDeterminismTest, GpBoTrajectory) {
  ExpectIdenticalTrajectories([](const ConfigurationSpace& space) {
    OptimizerOptions options;
    options.seed = 31;
    return std::make_unique<VanillaBoOptimizer>(space, options);
  });
}

// A longer GP-BO run whose surrogate crosses several incremental appends
// between hyperopt refreshes (hyperopt_every = 5, 25 iterations): the
// bordered-append path must keep the trajectory bit-identical both
// across pool sizes and against the full-refactorization baseline.
TEST(ParallelDeterminismTest, GpBoTrajectoryCrossesIncrementalAppends) {
  struct TestGpBo final : GpBoOptimizer {
    using GpBoOptimizer::GpBoOptimizer;
    std::string name() const override { return "Test GP-BO"; }
  };
  auto run = [](size_t pool_size, bool incremental) {
    PoolSizeGuard guard(pool_size);
    const ConfigurationSpace space = MakeContinuousSpace(4);
    OptimizerOptions options;
    options.seed = 53;
    GaussianProcessOptions gp_options;
    gp_options.enable_incremental = incremental;
    TestGpBo optimizer(
        space, options, [] { return std::make_unique<Matern52Kernel>(); },
        gp_options);
    std::vector<double> trace;
    for (int i = 0; i < 25; ++i) {
      const Configuration c = optimizer.Suggest();
      double score = 0.0;
      for (size_t j = 0; j < c.size(); ++j) {
        score -= (c[j] - 0.6) * (c[j] - 0.6);
      }
      optimizer.Observe(c, score);
      for (size_t j = 0; j < c.size(); ++j) trace.push_back(c[j]);
    }
    return trace;
  };
  const std::vector<double> baseline = run(1, /*incremental=*/false);
  EXPECT_EQ(baseline, run(1, /*incremental=*/true));
  EXPECT_EQ(baseline, run(2, /*incremental=*/true));
  EXPECT_EQ(baseline, run(8, /*incremental=*/true));
}

// GP-BO forced onto the sparse tier: suggestion-by-suggestion bitwise
// equality across the acceptance pool sweep {1, 2, 8}.
TEST(ParallelDeterminismTest, SparseTierGpBoTrajectory) {
  struct TestGpBo final : GpBoOptimizer {
    using GpBoOptimizer::GpBoOptimizer;
    std::string name() const override { return "Sparse GP-BO"; }
  };
  auto run = [](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    const ConfigurationSpace space = MakeContinuousSpace(4);
    OptimizerOptions options;
    options.seed = 67;
    SurrogateTierOptions tier_options;
    tier_options.tier = SurrogateTier::kSparse;
    tier_options.num_inducing = 12;
    TestGpBo optimizer(
        space, options, [] { return std::make_unique<Matern52Kernel>(); },
        GaussianProcessOptions{}, tier_options);
    std::vector<double> trace;
    for (int i = 0; i < 20; ++i) {
      const Configuration c = optimizer.Suggest();
      double score = 0.0;
      for (size_t j = 0; j < c.size(); ++j) {
        score -= (c[j] - 0.6) * (c[j] - 0.6);
      }
      optimizer.Observe(c, score);
      for (size_t j = 0; j < c.size(); ++j) trace.push_back(c[j]);
    }
    return trace;
  };
  const std::vector<double> pool1 = run(1);
  EXPECT_EQ(pool1, run(2));
  EXPECT_EQ(pool1, run(8));
}

// The projected wrapper adds the embedding decode on top of the inner
// optimizer; the full-space trajectory must stay bit-identical across
// pool sizes (the projection itself is pool-independent by construction,
// but the inner BO loop is not trivially so).
TEST(ParallelDeterminismTest, ProjectedOptimizerTrajectory) {
  auto run = [](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    const ConfigurationSpace space = MakeContinuousSpace(8);
    OptimizerOptions options;
    options.seed = 71;
    ProjectionOptions projection;
    projection.dims = 3;
    ProjectedOptimizer optimizer(space, options, OptimizerType::kVanillaBo,
                                 projection);
    std::vector<double> trace;
    for (int i = 0; i < 18; ++i) {
      const Configuration c = optimizer.Suggest();
      double score = 0.0;
      for (size_t j = 0; j < c.size(); ++j) {
        score -= (c[j] - 0.6) * (c[j] - 0.6);
      }
      optimizer.Observe(c, score);
      for (size_t j = 0; j < c.size(); ++j) trace.push_back(c[j]);
    }
    return trace;
  };
  const std::vector<double> pool1 = run(1);
  EXPECT_EQ(pool1, run(2));
  EXPECT_EQ(pool1, run(8));
}

TEST(ParallelDeterminismTest, SmacTrajectory) {
  ExpectIdenticalTrajectories([](const ConfigurationSpace& space) {
    OptimizerOptions options;
    options.seed = 37;
    return std::make_unique<SmacOptimizer>(space, options);
  });
}

TEST(ParallelDeterminismTest, TurboTrajectory) {
  ExpectIdenticalTrajectories([](const ConfigurationSpace& space) {
    OptimizerOptions options;
    options.seed = 41;
    return std::make_unique<TurboOptimizer>(space, options);
  });
}

// RGPE's ensemble acquisition scores candidates with ParallelFor across
// every live base model plus the target model; the whole transfer
// trajectory must be bit-identical at any pool size.
TEST(ParallelDeterminismTest, RgpeTrajectory) {
  // Two source tasks over the shared synthetic truth (peak at 0.8 in dim
  // 0), one of them inverted so both the high- and near-zero-weight model
  // paths are exercised.
  const auto make_repository = [](const ConfigurationSpace& space) {
    ObservationRepository repo;
    Rng rng(43);
    SourceTask helpful, adversarial;
    helpful.name = "helpful";
    adversarial.name = "adversarial";
    for (int i = 0; i < 40; ++i) {
      std::vector<double> u(space.dimension());
      for (double& v : u) v = rng.Uniform();
      const double score = -(u[0] - 0.8) * (u[0] - 0.8);
      helpful.unit_x.push_back(u);
      helpful.scores.push_back(score);
      adversarial.unit_x.push_back(u);
      adversarial.scores.push_back(-score);
    }
    repo.AddTask(helpful);
    repo.AddTask(adversarial);
    return repo;
  };

  auto run = [&](size_t pool_size) {
    PoolSizeGuard guard(pool_size);
    const ConfigurationSpace space = MakeContinuousSpace(4);
    const ObservationRepository repo = make_repository(space);
    OptimizerOptions options;
    options.seed = 47;
    options.initial_design = 5;
    options.acquisition_candidates = 80;
    RgpeOptimizer rgpe(space, options, &repo, TransferBase::kSmac);
    std::vector<double> trace;
    for (int i = 0; i < 15; ++i) {
      const Configuration c = rgpe.Suggest();
      double score = 0.0;
      for (size_t j = 0; j < c.size(); ++j) {
        score -= (c[j] - 0.6) * (c[j] - 0.6);
      }
      rgpe.Observe(c, score);
      for (size_t j = 0; j < c.size(); ++j) trace.push_back(c[j]);
    }
    for (double w : rgpe.last_weights()) trace.push_back(w);
    return trace;
  };

  const std::vector<double> pool1 = run(1);
  EXPECT_EQ(pool1, run(2));
  EXPECT_EQ(pool1, run(8));
}

// Diagnostics are pure observers: turning the per-session collector on
// must leave the tuning trajectory bitwise identical at every pool size
// in the acceptance sweep (the collector never consumes randomness or
// clock reads that feed the optimizer).
TEST(ParallelDeterminismTest, DiagnosticsDoNotPerturbTrajectories) {
  auto run = [](size_t pool_size, bool diagnostics) {
    PoolSizeGuard guard(pool_size);
    DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                      HardwareInstance::kB, /*seed=*/5);
    std::vector<size_t> knob_indices(sim.space().dimension());
    for (size_t i = 0; i < knob_indices.size(); ++i) knob_indices[i] = i;
    TuningEnvironment env(&sim, knob_indices);
    OptimizerOptions options;
    options.seed = 73;
    std::unique_ptr<Optimizer> optimizer =
        CreateOptimizer(OptimizerType::kVanillaBo, env.space(), options);
    SessionControls controls;
    controls.diagnostics = diagnostics;
    controls.session_label = "determinism";
    const SessionResult result =
        RunTuningSession(&env, optimizer.get(), /*iterations=*/10, controls);
    std::vector<double> trace = result.objective_trace;
    trace.insert(trace.end(), result.improvement_trace.begin(),
                 result.improvement_trace.end());
    return trace;
  };
  const std::vector<double> baseline = run(1, /*diagnostics=*/false);
  EXPECT_EQ(baseline, run(1, /*diagnostics=*/true));
  EXPECT_EQ(baseline, run(2, /*diagnostics=*/true));
  EXPECT_EQ(baseline, run(8, /*diagnostics=*/true));
}

}  // namespace
}  // namespace dbtune
