#include "knobs/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(CatalogTest, HasExactly197Knobs) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  EXPECT_EQ(space.dimension(), kMySqlKnobCount);
  EXPECT_EQ(space.dimension(), 197u);
}

TEST(CatalogTest, NamesAreUniqueAndNonEmpty) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  std::set<std::string> names;
  for (const Knob& k : space.knobs()) {
    EXPECT_FALSE(k.name().empty());
    EXPECT_TRUE(names.insert(k.name()).second) << "duplicate " << k.name();
  }
}

TEST(CatalogTest, ContainsPaperHighlightedKnobs) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  // Knobs the paper names explicitly.
  EXPECT_TRUE(space.KnobIndex("innodb_buffer_pool_size").ok());
  EXPECT_TRUE(space.KnobIndex("tmp_table_size").ok());
  EXPECT_TRUE(space.KnobIndex("innodb_thread_concurrency").ok());
  EXPECT_TRUE(space.KnobIndex("innodb_stats_method").ok());
  EXPECT_TRUE(space.KnobIndex("innodb_flush_neighbors").ok());
}

TEST(CatalogTest, HeterogeneousTypeMix) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  const size_t categorical = space.CategoricalIndices().size();
  const size_t numeric = space.NumericIndices().size();
  EXPECT_EQ(categorical + numeric, space.dimension());
  // Enough categorical knobs for the heterogeneity experiments.
  EXPECT_GE(categorical, 30u);
  EXPECT_GE(numeric, 100u);
}

TEST(CatalogTest, DefaultsAreValid) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  EXPECT_TRUE(space.Validate(space.Default()).ok());
}

TEST(CatalogTest, PaperKnobTypesMatch) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  // The paper's examples: buffer pool / tmp_table_size continuous-ish
  // (numeric), stats_method / flush_neighbors categorical.
  EXPECT_FALSE(
      space.knob(*space.KnobIndex("innodb_buffer_pool_size")).is_categorical());
  EXPECT_FALSE(space.knob(*space.KnobIndex("tmp_table_size")).is_categorical());
  EXPECT_TRUE(
      space.knob(*space.KnobIndex("innodb_stats_method")).is_categorical());
  EXPECT_TRUE(
      space.knob(*space.KnobIndex("innodb_flush_neighbors")).is_categorical());
}

TEST(CatalogTest, SmallTestCatalogSane) {
  const ConfigurationSpace space = SmallTestCatalog();
  EXPECT_EQ(space.dimension(), 12u);
  EXPECT_TRUE(space.Validate(space.Default()).ok());
  EXPECT_GE(space.CategoricalIndices().size(), 2u);
}

TEST(CatalogTest, BufferPoolIsLogScaled) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  const Knob& bp = space.knob(*space.KnobIndex("innodb_buffer_pool_size"));
  EXPECT_TRUE(bp.log_scale());
  EXPECT_GT(bp.max() / bp.min(), 1000.0);  // spans orders of magnitude
}

}  // namespace
}  // namespace dbtune
