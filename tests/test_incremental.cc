#include "importance/incremental.h"

#include <gtest/gtest.h>

#include "knobs/catalog.h"

namespace dbtune {
namespace {

std::vector<size_t> GroundTruthRanking(const DbmsSimulator& sim) {
  return sim.surface().importance_ranking();
}

TEST(IncrementalTest, SchedulesMatchPaperHeuristics) {
  const IncrementalOptions inc = IncreasingSchedule(25);
  ASSERT_GE(inc.phase_sizes.size(), 2u);
  for (size_t i = 1; i < inc.phase_sizes.size(); ++i) {
    EXPECT_GT(inc.phase_sizes[i], inc.phase_sizes[i - 1]);
  }
  const IncrementalOptions dec = DecreasingSchedule(25);
  for (size_t i = 1; i < dec.phase_sizes.size(); ++i) {
    EXPECT_LT(dec.phase_sizes[i], dec.phase_sizes[i - 1]);
  }
  EXPECT_EQ(inc.iterations_per_phase, 25u);
}

TEST(IncrementalTest, RejectsInvalidOptions) {
  DbmsSimulator sim(WorkloadId::kVoter, HardwareInstance::kB, 1);
  IncrementalOptions options;
  options.phase_sizes = {};
  EXPECT_FALSE(
      RunIncrementalSession(&sim, GroundTruthRanking(sim), options).ok());
  options.phase_sizes = {5, 0};
  EXPECT_FALSE(
      RunIncrementalSession(&sim, GroundTruthRanking(sim), options).ok());
  options.phase_sizes = {99999};
  EXPECT_FALSE(
      RunIncrementalSession(&sim, GroundTruthRanking(sim), options).ok());
}

TEST(IncrementalTest, IncreasingSessionRunsAndIsMonotone) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 2);
  IncrementalOptions options;
  options.phase_sizes = {5, 10};
  options.iterations_per_phase = 15;
  options.seed = 3;
  Result<IncrementalResult> result =
      RunIncrementalSession(&sim, GroundTruthRanking(sim), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->improvement_trace.size(), 30u);
  for (size_t i = 1; i < result->improvement_trace.size(); ++i) {
    EXPECT_GE(result->improvement_trace[i], result->improvement_trace[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result->final_improvement,
                   result->improvement_trace.back());
}

TEST(IncrementalTest, DecreasingSessionRuns) {
  DbmsSimulator sim(WorkloadId::kTpcc, HardwareInstance::kB, 4);
  IncrementalOptions options;
  options.phase_sizes = {20, 10, 5};
  options.iterations_per_phase = 10;
  options.seed = 5;
  Result<IncrementalResult> result =
      RunIncrementalSession(&sim, GroundTruthRanking(sim), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_objective_trace.size(), 30u);
  EXPECT_GE(result->final_improvement, 0.0);
}

TEST(IncrementalTest, FindsImprovementOnImportantKnobs) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 6);
  IncrementalOptions options;
  options.phase_sizes = {5, 10, 15};
  options.iterations_per_phase = 20;
  options.optimizer = OptimizerType::kSmac;
  options.seed = 7;
  Result<IncrementalResult> result =
      RunIncrementalSession(&sim, GroundTruthRanking(sim), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_improvement, 10.0);
}

}  // namespace
}  // namespace dbtune
