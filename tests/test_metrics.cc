#include "core/metrics.h"

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(PerformanceEnhancementTest, ThroughputDirection) {
  EXPECT_NEAR(PerformanceEnhancement(100.0, 110.0, ObjectiveKind::kThroughput),
              0.10, 1e-12);
  EXPECT_NEAR(PerformanceEnhancement(100.0, 90.0, ObjectiveKind::kThroughput),
              -0.10, 1e-12);
}

TEST(PerformanceEnhancementTest, LatencyDirection) {
  // Lower latency is an enhancement.
  EXPECT_NEAR(PerformanceEnhancement(200.0, 150.0, ObjectiveKind::kLatencyP95),
              0.25, 1e-12);
  EXPECT_LT(PerformanceEnhancement(200.0, 220.0, ObjectiveKind::kLatencyP95),
            0.0);
}

TEST(TransferSpeedupTest, FasterTransferGivesSpeedupAboveOne) {
  // Base finds 100 at step 4 (of 4). Transfer beats 100 at step 2.
  const std::vector<double> base = {50, 80, 90, 100};
  const std::vector<double> transfer = {60, 101, 101, 101};
  const auto speedup =
      TransferSpeedup(base, transfer, ObjectiveKind::kThroughput);
  ASSERT_TRUE(speedup.has_value());
  EXPECT_DOUBLE_EQ(*speedup, 2.0);
}

TEST(TransferSpeedupTest, NeverBeatingBaseIsNullopt) {
  const std::vector<double> base = {50, 100};
  const std::vector<double> transfer = {60, 99};
  EXPECT_FALSE(
      TransferSpeedup(base, transfer, ObjectiveKind::kThroughput).has_value());
}

TEST(TransferSpeedupTest, LatencyDirectionHandled) {
  // Base reaches latency 100 at step 3; transfer beats it at step 1.
  const std::vector<double> base = {200, 150, 100};
  const std::vector<double> transfer = {90, 90, 90};
  const auto speedup =
      TransferSpeedup(base, transfer, ObjectiveKind::kLatencyP95);
  ASSERT_TRUE(speedup.has_value());
  EXPECT_DOUBLE_EQ(*speedup, 3.0);
}

TEST(TransferSpeedupTest, SlowerTransferBelowOne) {
  const std::vector<double> base = {100, 100, 100};  // best found at step 1
  const std::vector<double> transfer = {50, 60, 101};
  const auto speedup =
      TransferSpeedup(base, transfer, ObjectiveKind::kThroughput);
  ASSERT_TRUE(speedup.has_value());
  EXPECT_NEAR(*speedup, 1.0 / 3.0, 1e-12);
}

TEST(AverageRanksTest, HigherIsBetter) {
  // Two scenarios, three methods.
  const std::vector<std::vector<double>> values = {
      {10.0, 30.0, 20.0},  // ranks: 3, 1, 2
      {5.0, 15.0, 10.0},   // ranks: 3, 1, 2
  };
  const std::vector<double> ranks = AverageRanks(values, true);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(AverageRanksTest, LowerIsBetterAndTies) {
  const std::vector<std::vector<double>> values = {
      {1.0, 1.0, 5.0},  // ranks: 1.5, 1.5, 3
  };
  const std::vector<double> ranks = AverageRanks(values, false);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(AverageRanksTest, MixedScenarios) {
  const std::vector<std::vector<double>> values = {
      {3.0, 2.0, 1.0},
      {1.0, 2.0, 3.0},
  };
  const std::vector<double> ranks = AverageRanks(values, true);
  // Each method wins one scenario and loses one.
  EXPECT_DOUBLE_EQ(ranks[0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

}  // namespace
}  // namespace dbtune
