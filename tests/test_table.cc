#include "util/table.h"

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter table({"a", "b"});
  table.AddRow({"xxxx", "y"});
  const std::string out = table.ToString();
  // Every line has the same length.
  size_t first_len = out.find('\n');
  size_t pos = first_len + 1;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace dbtune
