#include <cmath>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/mlp.h"
#include "util/random.h"

namespace dbtune {
namespace {

TEST(MlpTest, ForwardShapes) {
  Mlp net({3, 8, 2}, {Activation::kRelu, Activation::kNone}, 1);
  const std::vector<double> out = net.Forward({0.1, 0.2, 0.3});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(net.input_size(), 3u);
  EXPECT_EQ(net.output_size(), 2u);
  EXPECT_EQ(net.num_params(), 3u * 8 + 8 + 8 * 2 + 2);
}

TEST(MlpTest, SigmoidOutputInUnitRange) {
  Mlp net({2, 4, 3}, {Activation::kRelu, Activation::kSigmoid}, 2);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> out =
        net.Forward({rng.Gaussian(0, 3), rng.Gaussian(0, 3)});
    for (double v : out) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(MlpTest, DeterministicForSeed) {
  Mlp a({2, 4, 1}, {Activation::kTanh, Activation::kNone}, 7);
  Mlp b({2, 4, 1}, {Activation::kTanh, Activation::kNone}, 7);
  EXPECT_EQ(a.params(), b.params());
}

// Numerically checks Backward against finite differences.
TEST(MlpTest, GradientsMatchFiniteDifferences) {
  Mlp net({2, 5, 1}, {Activation::kTanh, Activation::kNone}, 3);
  const std::vector<double> input = {0.4, -0.7};

  Mlp::Tape tape;
  const double out = net.Forward(input, &tape)[0];
  (void)out;
  std::vector<double> grad(net.num_params(), 0.0);
  net.Backward(tape, {1.0}, &grad);

  const double eps = 1e-6;
  for (size_t p = 0; p < net.num_params(); p += 7) {  // spot-check
    const double saved = net.params()[p];
    net.mutable_params()[p] = saved + eps;
    const double up = net.Forward(input)[0];
    net.mutable_params()[p] = saved - eps;
    const double down = net.Forward(input)[0];
    net.mutable_params()[p] = saved;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad[p], numeric, 1e-5) << "param " << p;
  }
}

TEST(MlpTest, InputGradientMatchesFiniteDifferences) {
  Mlp net({3, 4, 1}, {Activation::kRelu, Activation::kNone}, 5);
  const std::vector<double> input = {0.3, 0.9, -0.2};
  Mlp::Tape tape;
  net.Forward(input, &tape);
  std::vector<double> grad(net.num_params(), 0.0);
  const std::vector<double> dinput = net.Backward(tape, {1.0}, &grad);
  ASSERT_EQ(dinput.size(), 3u);

  const double eps = 1e-6;
  for (size_t j = 0; j < 3; ++j) {
    std::vector<double> up = input, down = input;
    up[j] += eps;
    down[j] -= eps;
    const double numeric =
        (net.Forward(up)[0] - net.Forward(down)[0]) / (2 * eps);
    EXPECT_NEAR(dinput[j], numeric, 1e-5);
  }
}

TEST(MlpTest, SoftUpdateBlendsParameters) {
  Mlp a({1, 2, 1}, {Activation::kNone, Activation::kNone}, 1);
  Mlp b({1, 2, 1}, {Activation::kNone, Activation::kNone}, 2);
  const std::vector<double> before = b.params();
  b.SoftUpdateFrom(a, 0.5);
  for (size_t i = 0; i < b.num_params(); ++i) {
    EXPECT_NEAR(b.params()[i], 0.5 * a.params()[i] + 0.5 * before[i], 1e-12);
  }
  b.SoftUpdateFrom(a, 1.0);
  EXPECT_EQ(b.params(), a.params());
}

TEST(MlpTest, LearnsXorWithAdam) {
  Mlp net({2, 8, 1}, {Activation::kTanh, Activation::kNone}, 9);
  AdamOptimizer adam(net.num_params(), 5e-3);
  const std::vector<std::vector<double>> inputs = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<double> targets = {0, 1, 1, 0};

  for (int epoch = 0; epoch < 2000; ++epoch) {
    std::vector<double> grad(net.num_params(), 0.0);
    for (size_t i = 0; i < inputs.size(); ++i) {
      Mlp::Tape tape;
      const double out = net.Forward(inputs[i], &tape)[0];
      net.Backward(tape, {2.0 * (out - targets[i]) / 4.0}, &grad);
    }
    adam.Step(&net.mutable_params(), grad);
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_NEAR(net.Forward(inputs[i])[0], targets[i], 0.2);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2.
  std::vector<double> params = {0.0};
  AdamOptimizer adam(1, 0.1);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> grad = {2.0 * (params[0] - 3.0)};
    adam.Step(&params, grad);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-3);
}

TEST(AdamTest, LearningRateAdjustable) {
  AdamOptimizer adam(1, 0.1);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.1);
  adam.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.01);
}

}  // namespace
}  // namespace dbtune
