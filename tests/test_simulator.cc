#include "dbms/simulator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "knobs/catalog.h"

namespace dbtune {
namespace {

TEST(SimulatorTest, DefaultEvaluationSucceeds) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  const EvaluationResult result = sim.Evaluate(sim.EffectiveDefault());
  EXPECT_FALSE(result.failed);
  EXPECT_GT(result.objective, 0.0);
  EXPECT_EQ(result.internal_metrics.size(), kNumInternalMetrics);
  EXPECT_GT(result.evaluation_seconds, 0.0);
}

TEST(SimulatorTest, EffectiveDefaultRaisesBufferPool) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  const Configuration def = sim.EffectiveDefault();
  const size_t bp = *sim.space().KnobIndex("innodb_buffer_pool_size");
  const double ram_bytes = 16.0 * 1024 * 1024 * 1024;
  EXPECT_NEAR(def[bp], 0.6 * ram_bytes, 0.01 * ram_bytes);
}

TEST(SimulatorTest, OversizedBufferPoolCrashes) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  Configuration c = sim.EffectiveDefault();
  const size_t bp = *sim.space().KnobIndex("innodb_buffer_pool_size");
  c[bp] = 60.0 * 1024 * 1024 * 1024;  // 60 GiB on a 16 GiB instance
  EXPECT_TRUE(sim.WouldCrash(c));
  const EvaluationResult result = sim.Evaluate(c);
  EXPECT_TRUE(result.failed);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(SimulatorTest, PerSessionBuffersCountTowardMemory) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  Configuration c = sim.EffectiveDefault();
  const size_t sort = *sim.space().KnobIndex("sort_buffer_size");
  const size_t join = *sim.space().KnobIndex("join_buffer_size");
  c[sort] = 512.0 * 1024 * 1024;
  c[join] = 512.0 * 1024 * 1024;  // 64 sessions x 1 GiB >> RAM
  EXPECT_TRUE(sim.WouldCrash(c));
}

TEST(SimulatorTest, NoiseIsSmall) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 7);
  const Configuration def = sim.EffectiveDefault();
  const double noiseless = sim.NoiselessObjective(def);
  for (int i = 0; i < 20; ++i) {
    const EvaluationResult result = sim.Evaluate(def);
    EXPECT_NEAR(result.objective / noiseless, 1.0, 0.10);
  }
}

TEST(SimulatorTest, HardwareScalesThroughput) {
  DbmsSimulator small(WorkloadId::kTpcc, HardwareInstance::kA, 1);
  DbmsSimulator large(WorkloadId::kTpcc, HardwareInstance::kD, 1);
  const double tps_small = small.NoiselessObjective(small.space().Default());
  const double tps_large = large.NoiselessObjective(large.space().Default());
  EXPECT_GT(tps_large, 2.0 * tps_small);
}

TEST(SimulatorTest, LatencyWorkloadInverted) {
  DbmsSimulator job_b(WorkloadId::kJob, HardwareInstance::kB, 1);
  DbmsSimulator job_d(WorkloadId::kJob, HardwareInstance::kD, 1);
  // Faster hardware => lower latency.
  EXPECT_LT(job_d.NoiselessObjective(job_d.space().Default()),
            job_b.NoiselessObjective(job_b.space().Default()));
}

TEST(SimulatorTest, JobDefaultLatencyNearPaper) {
  // The paper reports a ~200s default latency for JOB on instance B.
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 1);
  const double latency = sim.NoiselessObjective(sim.EffectiveDefault());
  EXPECT_GT(latency, 120.0);
  EXPECT_LT(latency, 320.0);
}

TEST(SimulatorTest, InternalMetricsDependOnConfiguration) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  Rng rng(5);
  const EvaluationResult a = sim.Evaluate(sim.EffectiveDefault());
  // A config with a very different surface position.
  Configuration c = sim.EffectiveDefault();
  EvaluationResult b;
  do {
    c = sim.space().SampleUniform(rng);
    b = sim.Evaluate(c);
  } while (b.failed);
  double distance = 0.0;
  for (size_t m = 0; m < kNumInternalMetrics; ++m) {
    distance += std::abs(a.internal_metrics[m] - b.internal_metrics[m]);
  }
  EXPECT_GT(distance, 0.5);
}

TEST(SimulatorTest, SimilarWorkloadsHaveCloserMetrics) {
  // Transactional workloads should produce metric signatures closer to
  // each other than to the analytical JOB (basis of workload mapping).
  auto signature = [](WorkloadId id) {
    DbmsSimulator sim(id, HardwareInstance::kB, 1);
    const EvaluationResult r = sim.Evaluate(sim.EffectiveDefault());
    return r.internal_metrics;
  };
  const auto tpcc = signature(WorkloadId::kTpcc);
  const auto seats = signature(WorkloadId::kSeats);
  const auto job = signature(WorkloadId::kJob);
  double d_txn = 0.0, d_job = 0.0;
  for (size_t m = 0; m < kNumInternalMetrics; ++m) {
    d_txn += (tpcc[m] - seats[m]) * (tpcc[m] - seats[m]);
    d_job += (tpcc[m] - job[m]) * (tpcc[m] - job[m]);
  }
  EXPECT_LT(d_txn, d_job);
}

TEST(SimulatorTest, TimeAccounting) {
  DbmsSimulator sim(WorkloadId::kVoter, HardwareInstance::kB, 1);
  EXPECT_DOUBLE_EQ(sim.simulated_seconds(), 0.0);
  sim.Evaluate(sim.EffectiveDefault());
  const double after_one = sim.simulated_seconds();
  EXPECT_GT(after_one, 100.0);  // restart + 3-minute stress test
  sim.Evaluate(sim.EffectiveDefault());
  EXPECT_NEAR(sim.simulated_seconds(), 2 * after_one, 1e-9);
  EXPECT_EQ(sim.evaluation_count(), 2u);
}

TEST(SimulatorTest, WorksWithSmallCatalog) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kTatp,
                    HardwareInstance::kB, 1);
  const EvaluationResult result = sim.Evaluate(sim.EffectiveDefault());
  EXPECT_FALSE(result.failed);
  EXPECT_GT(result.objective, 0.0);
}

TEST(SimulatorTest, ClipsInvalidValues) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kTatp,
                    HardwareInstance::kB, 1);
  Configuration c = sim.space().Default();
  c[0] = -1e18;  // far below the domain
  const EvaluationResult result = sim.Evaluate(c);
  EXPECT_GT(result.objective, 0.0);  // evaluated at the clipped value
}

}  // namespace
}  // namespace dbtune
