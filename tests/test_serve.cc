// Serving layer: protocol framing round-trips, session lifecycle
// (eviction, double close, suggest-after-close as Status — never
// aborts), store-backed resurrection, and the headline invariant — a
// served session's trajectory is bitwise identical to the standalone
// in-process loop at every pool size, batch width, and dispatch mode.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tuning_session.h"
#include "dbms/environment.h"
#include "knobs/catalog.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/batch_scheduler.h"
#include "serve/frame_server.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "store/observation_store.h"
#include "store/wal.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

using serve::BatchScheduler;
using serve::FrameServer;
using serve::LoopbackTransport;
using serve::SchedulerOptions;
using serve::ServedSessionOptions;
using serve::SessionManager;
using serve::SessionManagerOptions;
using store::ObservationStore;

// Restores the previous pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(size_t n)
      : original_(ExecutionContext::Get().num_threads()) {
    ExecutionContext::Get().SetNumThreads(n);
  }
  ~PoolSizeGuard() { ExecutionContext::Get().SetNumThreads(original_); }

 private:
  size_t original_;
};

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

std::string ServeStorePath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "serve_" + name + ".wal";
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());
  std::remove((path + ".snapshot.tmp").c_str());
  return path;
}

// One served-vs-standalone comparison unit: a session id plus everything
// that determines its trajectory.
struct SessionSpec {
  std::string id;
  OptimizerType optimizer = OptimizerType::kVanillaBo;
  uint64_t optimizer_seed = 1;
  WorkloadId workload = WorkloadId::kSysbench;
  uint64_t simulator_seed = 1;
};

std::vector<SessionSpec> MixedSpecs() {
  return {
      {"s-bo", OptimizerType::kVanillaBo, 11, WorkloadId::kSysbench, 21},
      {"s-mixed", OptimizerType::kMixedKernelBo, 12, WorkloadId::kTpcc, 22},
      {"s-smac", OptimizerType::kSmac, 13, WorkloadId::kJob, 23},
      {"s-tpe", OptimizerType::kTpe, 14, WorkloadId::kTatp, 24},
      {"s-turbo", OptimizerType::kTurbo, 15, WorkloadId::kSysbench, 25},
      {"s-rand", OptimizerType::kRandomSearch, 16, WorkloadId::kTpcc, 26},
  };
}

// The client side of one served session: its own simulator/environment
// (the server never evaluates).
struct ClientSession {
  std::unique_ptr<DbmsSimulator> simulator;
  std::unique_ptr<TuningEnvironment> env;
};

ClientSession MakeClient(const SessionSpec& spec) {
  ClientSession client;
  client.simulator = std::make_unique<DbmsSimulator>(
      SmallTestCatalog(), spec.workload, HardwareInstance::kB,
      spec.simulator_seed);
  client.env = std::make_unique<TuningEnvironment>(
      client.simulator.get(),
      FirstKnobs(client.simulator->space().dimension()));
  return client;
}

// The ground truth: the standalone in-process loop of core/tuning_session.
std::vector<Observation> StandaloneHistory(const SessionSpec& spec,
                                           size_t iterations) {
  ClientSession client = MakeClient(spec);
  OptimizerOptions options;
  options.seed = spec.optimizer_seed;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(spec.optimizer, client.env->space(), options);
  RunTuningSession(client.env.get(), optimizer.get(), iterations);
  return client.env->history();
}

ServedSessionOptions ToServedOptions(const SessionSpec& spec,
                                     const ClientSession& client) {
  ServedSessionOptions options;
  options.space_name = "small";
  options.optimizer_type = spec.optimizer;
  options.seed = spec.optimizer_seed;
  options.reference_score = client.env->default_score();
  return options;
}

// Drives every spec through the serving layer for `iterations` rounds:
// all suggests of a round batch through the scheduler, each client
// evaluates its own configuration, all observes batch back.
std::vector<std::vector<Observation>> ServedHistories(
    const std::vector<SessionSpec>& specs, size_t iterations,
    size_t batch_width, bool batched,
    ObservationStore* store = nullptr) {
  SessionManagerOptions manager_options;
  manager_options.store = store;
  SessionManager manager(manager_options);
  std::vector<ClientSession> clients;
  clients.reserve(specs.size());
  for (const SessionSpec& spec : specs) clients.push_back(MakeClient(spec));
  manager.RegisterSpace("small", clients.front().env->space());
  for (size_t s = 0; s < specs.size(); ++s) {
    EXPECT_TRUE(
        manager.CreateSession(specs[s].id, ToServedOptions(specs[s],
                                                           clients[s]))
            .ok());
  }

  SchedulerOptions scheduler_options;
  scheduler_options.batch_width = batch_width;
  scheduler_options.batched = batched;
  BatchScheduler scheduler(&manager, scheduler_options);

  std::vector<uint64_t> tickets(specs.size());
  for (size_t iter = 0; iter < iterations; ++iter) {
    for (size_t s = 0; s < specs.size(); ++s) {
      tickets[s] = scheduler.EnqueueSuggest(specs[s].id);
    }
    scheduler.Drain();
    std::vector<Observation> outcomes(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      Result<Configuration> suggested = scheduler.TakeSuggest(tickets[s]);
      EXPECT_TRUE(suggested.ok()) << suggested.status().ToString();
      outcomes[s] = clients[s].env->Evaluate(*suggested);
    }
    for (size_t s = 0; s < specs.size(); ++s) {
      tickets[s] = scheduler.EnqueueObserve(specs[s].id, outcomes[s]);
    }
    scheduler.Drain();
    for (size_t s = 0; s < specs.size(); ++s) {
      EXPECT_TRUE(scheduler.TakeObserve(tickets[s]).ok());
    }
  }

  std::vector<std::vector<Observation>> histories;
  histories.reserve(specs.size());
  for (ClientSession& client : clients) {
    histories.push_back(client.env->history());
  }
  return histories;
}

void ExpectBitwiseEqual(const std::vector<Observation>& expected,
                        const std::vector<Observation>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(expected[i].config == actual[i].config)
        << label << " config diverged at iteration " << (i + 1);
    EXPECT_EQ(expected[i].score, actual[i].score)
        << label << " score diverged at iteration " << (i + 1);
    EXPECT_EQ(expected[i].objective, actual[i].objective)
        << label << " objective diverged at iteration " << (i + 1);
    EXPECT_EQ(expected[i].failed, actual[i].failed)
        << label << " failed flag diverged at iteration " << (i + 1);
    EXPECT_EQ(expected[i].internal_metrics, actual[i].internal_metrics)
        << label << " metrics diverged at iteration " << (i + 1);
  }
}

// ---------------------------------------------------------------------------
// The acceptance invariant: served == standalone, bitwise, at pools
// 1/2/8 and batch widths 1/8/64.

TEST(ServeEqualityTest, ServedMatchesStandaloneAcrossPoolsAndWidths) {
  const std::vector<SessionSpec> specs = MixedSpecs();
  const size_t iterations = 14;
  std::vector<std::vector<Observation>> standalone;
  standalone.reserve(specs.size());
  for (const SessionSpec& spec : specs) {
    standalone.push_back(StandaloneHistory(spec, iterations));
  }
  for (size_t pool : {1u, 2u, 8u}) {
    PoolSizeGuard guard(pool);
    for (size_t width : {1u, 8u, 64u}) {
      const auto served =
          ServedHistories(specs, iterations, width, /*batched=*/true);
      for (size_t s = 0; s < specs.size(); ++s) {
        ExpectBitwiseEqual(standalone[s], served[s],
                           specs[s].id + " pool=" + std::to_string(pool) +
                               " width=" + std::to_string(width));
      }
    }
  }
}

TEST(ServeEqualityTest, UnbatchedDispatchMatchesStandalone) {
  const std::vector<SessionSpec> specs = MixedSpecs();
  const size_t iterations = 10;
  PoolSizeGuard guard(8);
  const auto served =
      ServedHistories(specs, iterations, /*batch_width=*/64,
                      /*batched=*/false);
  for (size_t s = 0; s < specs.size(); ++s) {
    ExpectBitwiseEqual(StandaloneHistory(specs[s], iterations), served[s],
                       specs[s].id + " unbatched");
  }
}

// ---------------------------------------------------------------------------
// Session lifecycle: protocol misuse returns Status, never aborts.

ConfigurationSpace SmallSpace() {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 7);
  TuningEnvironment env(&sim, FirstKnobs(sim.space().dimension()));
  return env.space();
}

ServedSessionOptions SmallOptions(uint64_t seed = 5) {
  ServedSessionOptions options;
  options.space_name = "small";
  options.optimizer_type = OptimizerType::kRandomSearch;
  options.seed = seed;
  options.reference_score = 100.0;
  return options;
}

TEST(ServeLifecycleTest, UnknownSpaceAndSessionAreNotFound) {
  SessionManager manager;
  EXPECT_EQ(manager.CreateSession("a", SmallOptions()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.Suggest("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Observe("a", Observation{}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.CloseSession("a").code(), StatusCode::kNotFound);
}

TEST(ServeLifecycleTest, DoubleCreateDoubleCloseAndUseAfterCloseAreErrors) {
  SessionManager manager;
  manager.RegisterSpace("small", SmallSpace());
  ASSERT_TRUE(manager.CreateSession("a", SmallOptions()).ok());
  EXPECT_EQ(manager.CreateSession("a", SmallOptions()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.num_open(), 1u);

  ASSERT_TRUE(manager.CloseSession("a").ok());
  EXPECT_EQ(manager.num_open(), 0u);
  EXPECT_EQ(manager.CloseSession("a").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Suggest("a").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Observe("a", Observation{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.CreateSession("a", SmallOptions()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServeLifecycleTest, SuggestObserveAlternationIsEnforced) {
  SessionManager manager;
  manager.RegisterSpace("small", SmallSpace());
  ASSERT_TRUE(manager.CreateSession("a", SmallOptions()).ok());
  // Observe before any suggest: no outstanding suggestion.
  EXPECT_EQ(manager.Observe("a", Observation{}).code(),
            StatusCode::kFailedPrecondition);
  Result<Configuration> first = manager.Suggest("a");
  ASSERT_TRUE(first.ok());
  // Second suggest before the observe.
  EXPECT_EQ(manager.Suggest("a").status().code(),
            StatusCode::kFailedPrecondition);
  // Wrong dimension is InvalidArgument, not a crash.
  Observation wrong;
  wrong.config = Configuration(std::vector<double>{1.0});
  EXPECT_EQ(manager.Observe("a", wrong).code(),
            StatusCode::kInvalidArgument);
  Observation ok_obs;
  ok_obs.config = *first;
  ok_obs.score = 1.0;
  EXPECT_TRUE(manager.Observe("a", ok_obs).ok());
  EXPECT_TRUE(manager.Suggest("a").ok());
}

TEST(ServeLifecycleTest, IdleSessionsAreEvictedUnderFakeClock) {
  obs::EnableFakeClockForTest();
  SessionManagerOptions options;
  options.idle_timeout_seconds = 0.05;  // 50 fake-clock ticks
  SessionManager manager(options);
  manager.RegisterSpace("small", SmallSpace());
  ASSERT_TRUE(manager.CreateSession("busy", SmallOptions(1)).ok());
  ASSERT_TRUE(manager.CreateSession("idle", SmallOptions(2)).ok());
  EXPECT_EQ(manager.num_resident(), 2u);

  // Give "idle" history so losing its optimizer actually loses state (a
  // zero-observation session resurrects trivially, store or not).
  {
    Result<Configuration> suggested = manager.Suggest("idle");
    ASSERT_TRUE(suggested.ok());
    Observation obs;
    obs.config = *suggested;
    obs.score = 1.0;
    ASSERT_TRUE(manager.Observe("idle", obs).ok());
  }

  // Keep "busy" warm while the fake clock marches 1ms per read; "idle"
  // is never touched again.
  for (int i = 0; i < 80; ++i) {
    Result<Configuration> suggested = manager.Suggest("busy");
    ASSERT_TRUE(suggested.ok());
    Observation obs;
    obs.config = *suggested;
    obs.score = static_cast<double>(i);
    ASSERT_TRUE(manager.Observe("busy", obs).ok());
  }
  EXPECT_EQ(manager.EvictIdle(), 1u);
  EXPECT_EQ(manager.num_resident(), 1u);
  EXPECT_EQ(manager.num_open(), 2u);  // evicted, not closed

  // Without a durable store the evicted session cannot come back.
  EXPECT_EQ(manager.Suggest("idle").status().code(),
            StatusCode::kFailedPrecondition);
  // The busy session is untouched.
  EXPECT_TRUE(manager.Suggest("busy").ok());
  obs::DisableFakeClockForTest();
}

// ---------------------------------------------------------------------------
// Store-backed resurrection: the PR 9 replay path.

// Runs `spec` through a served manager bound to `store` for
// `iterations` rounds, evicting (or closing/recreating) mid-way, and
// expects the client history to match the standalone run bitwise.
TEST(ServeStoreTest, EvictedSessionResumesBitIdentically) {
  const std::string path = ServeStorePath("evict_resume");
  auto opened = ObservationStore::Open(path);
  ASSERT_TRUE(opened.ok());
  ObservationStore* store = opened.value().get();

  const SessionSpec spec{"evictee", OptimizerType::kSmac, 31,
                         WorkloadId::kSysbench, 41};
  const size_t iterations = 12;
  const std::vector<Observation> standalone =
      StandaloneHistory(spec, iterations);

  obs::EnableFakeClockForTest();
  SessionManagerOptions manager_options;
  manager_options.store = store;
  SessionManager manager(manager_options);
  ClientSession client = MakeClient(spec);
  manager.RegisterSpace("small", client.env->space());
  ASSERT_TRUE(
      manager.CreateSession(spec.id, ToServedOptions(spec, client)).ok());

  for (size_t iter = 0; iter < iterations; ++iter) {
    Result<Configuration> suggested = manager.Suggest(spec.id);
    ASSERT_TRUE(suggested.ok()) << suggested.status().ToString();
    const Observation outcome = client.env->Evaluate(*suggested);
    // Evict while a suggestion is outstanding at iteration 5, and
    // between rounds at iteration 8: both must resume seamlessly.
    if (iter == 5) {
      EXPECT_EQ(manager.EvictIdle(1e-9), 1u);
      EXPECT_EQ(manager.num_resident(), 0u);
    }
    ASSERT_TRUE(manager.Observe(spec.id, outcome).ok());
    if (iter == 8) {
      EXPECT_EQ(manager.EvictIdle(1e-9), 1u);
    }
  }
  ExpectBitwiseEqual(standalone, client.env->history(), "evicted-resume");
  obs::DisableFakeClockForTest();
}

TEST(ServeStoreTest, EvictedThenRecreatedSessionReplaysFromStore) {
  const std::string path = ServeStorePath("recreate");
  auto opened = ObservationStore::Open(path);
  ASSERT_TRUE(opened.ok());
  ObservationStore* store = opened.value().get();

  const SessionSpec spec{"phoenix", OptimizerType::kVanillaBo, 51,
                         WorkloadId::kTpcc, 61};
  const size_t iterations = 12;
  const size_t split = 7;
  const std::vector<Observation> standalone =
      StandaloneHistory(spec, iterations);

  obs::EnableFakeClockForTest();
  SessionManagerOptions manager_options;
  manager_options.store = store;
  ClientSession client = MakeClient(spec);

  {
    SessionManager manager(manager_options);
    manager.RegisterSpace("small", client.env->space());
    ASSERT_TRUE(
        manager.CreateSession(spec.id, ToServedOptions(spec, client)).ok());
    for (size_t iter = 0; iter < split; ++iter) {
      Result<Configuration> suggested = manager.Suggest(spec.id);
      ASSERT_TRUE(suggested.ok());
      ASSERT_TRUE(
          manager.Observe(spec.id, client.env->Evaluate(*suggested)).ok());
    }
    EXPECT_EQ(manager.EvictIdle(1e-9), 1u);
    // Recreating the evicted id with the same parameters replays the
    // stored prefix into a fresh optimizer.
    size_t replayed = 0;
    ASSERT_TRUE(manager
                    .CreateSession(spec.id, ToServedOptions(spec, client),
                                   &replayed)
                    .ok());
    EXPECT_EQ(replayed, split);
    for (size_t iter = split; iter < iterations; ++iter) {
      Result<Configuration> suggested = manager.Suggest(spec.id);
      ASSERT_TRUE(suggested.ok());
      ASSERT_TRUE(
          manager.Observe(spec.id, client.env->Evaluate(*suggested)).ok());
    }
  }
  ExpectBitwiseEqual(standalone, client.env->history(),
                     "evict-recreate-resume");

  // A brand-new manager over the same store (process restart) resumes
  // the finished trajectory count too: replay consumes all 12.
  SessionManager restarted(manager_options);
  ClientSession probe = MakeClient(spec);
  restarted.RegisterSpace("small", probe.env->space());
  size_t replayed = 0;
  ASSERT_TRUE(restarted
                  .CreateSession(spec.id, ToServedOptions(spec, probe),
                                 &replayed)
                  .ok());
  EXPECT_EQ(replayed, iterations);
  obs::DisableFakeClockForTest();
}

TEST(ServeStoreTest, CloseSealsTrajectoryAsTransferTask) {
  const std::string path = ServeStorePath("seal");
  auto opened = ObservationStore::Open(path);
  ASSERT_TRUE(opened.ok());
  ObservationStore* store = opened.value().get();

  SessionManagerOptions options;
  options.store = store;
  SessionManager manager(options);
  manager.RegisterSpace("small", SmallSpace());
  ASSERT_TRUE(manager.CreateSession("sealed", SmallOptions(9)).ok());
  for (int i = 0; i < 3; ++i) {
    Result<Configuration> suggested = manager.Suggest("sealed");
    ASSERT_TRUE(suggested.ok());
    Observation obs;
    obs.config = *suggested;
    obs.score = 10.0 + i;
    ASSERT_TRUE(manager.Observe("sealed", obs).ok());
  }
  EXPECT_EQ(store->num_tasks(), 0u);
  ASSERT_TRUE(manager.CloseSession("sealed").ok());
  EXPECT_EQ(store->num_tasks(), 1u);
  // Sealed in the store too: the stored session is finished.
  const store::StoredSession* stored = store->FindSession("sealed");
  ASSERT_NE(stored, nullptr);
  EXPECT_TRUE(stored->finished);
}

// ---------------------------------------------------------------------------
// Protocol framing.

TEST(ServeProtocolTest, FramesRoundTripThroughDribbledReader) {
  serve::CreateSessionRequest create;
  create.session_id = "sess-1";
  create.space_name = "small";
  create.optimizer_type = static_cast<uint8_t>(OptimizerType::kSmac);
  create.seed = 77;
  create.reference_score = 123.456;
  create.initial_design = 8;
  create.acquisition_candidates = 120;
  serve::ObserveRequest observe;
  observe.session_id = "sess-1";
  observe.config = {1.0, -2.5, 3e17};
  observe.score = 9.25;
  observe.objective = -9.25;
  observe.failed = 1;
  observe.internal_metrics = {0.5, 0.25};

  const std::string wire = serve::EncodeCreateSession(1, create) +
                           serve::EncodeSuggest(2, {"sess-1"}) +
                           serve::EncodeObserve(3, observe) +
                           serve::EncodeCloseSession(4, {"sess-1"});

  // Feed the reader one byte at a time: frames must assemble across
  // arbitrarily fragmented reads.
  serve::FrameReader reader;
  std::vector<serve::Frame> frames;
  for (char byte : wire) {
    reader.Append(std::string_view(&byte, 1));
    serve::Frame frame;
    Result<bool> got = reader.Next(&frame);
    ASSERT_TRUE(got.ok());
    if (*got) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(reader.pending_bytes(), 0u);

  Result<serve::CreateSessionRequest> create2 =
      serve::DecodeCreateSession(frames[0]);
  ASSERT_TRUE(create2.ok());
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_EQ(create2->session_id, "sess-1");
  EXPECT_EQ(create2->space_name, "small");
  EXPECT_EQ(create2->optimizer_type,
            static_cast<uint8_t>(OptimizerType::kSmac));
  EXPECT_EQ(create2->seed, 77u);
  EXPECT_EQ(create2->reference_score, 123.456);
  EXPECT_EQ(create2->initial_design, 8u);
  EXPECT_EQ(create2->acquisition_candidates, 120u);

  Result<serve::SuggestRequest> suggest2 = serve::DecodeSuggest(frames[1]);
  ASSERT_TRUE(suggest2.ok());
  EXPECT_EQ(suggest2->session_id, "sess-1");

  Result<serve::ObserveRequest> observe2 = serve::DecodeObserve(frames[2]);
  ASSERT_TRUE(observe2.ok());
  EXPECT_EQ(observe2->config, observe.config);  // bitwise doubles
  EXPECT_EQ(observe2->score, observe.score);
  EXPECT_EQ(observe2->failed, 1);
  EXPECT_EQ(observe2->internal_metrics, observe.internal_metrics);

  Result<serve::CloseSessionRequest> close2 =
      serve::DecodeCloseSession(frames[3]);
  ASSERT_TRUE(close2.ok());
  EXPECT_EQ(close2->session_id, "sess-1");
}

TEST(ServeProtocolTest, MalformedFramesAreRejected) {
  // Oversized length prefix.
  std::string oversized;
  const uint32_t huge = serve::kMaxPayloadBytes + 1;
  for (size_t i = 0; i < 4; ++i) {
    oversized.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  serve::Frame frame;
  EXPECT_FALSE(serve::DecodeFrame(oversized, &frame).ok());

  // Payload shorter than type tag + request id.
  std::string runt;
  for (size_t i = 0; i < 4; ++i) {
    runt.push_back(static_cast<char>(i == 0 ? 4 : 0));
  }
  runt += std::string(4, '\0');
  EXPECT_FALSE(serve::DecodeFrame(runt, &frame).ok());

  // Trailing garbage after a valid body is an error, not ignored.
  serve::Frame padded;
  padded.type = serve::MessageType::kSuggest;
  padded.request_id = 9;
  store::WalEncoder enc;
  enc.PutString("sess");
  padded.body = enc.bytes() + "extra";
  EXPECT_FALSE(serve::DecodeSuggest(padded).ok());

  // Type confusion is an error too.
  serve::Frame suggest;
  suggest.type = serve::MessageType::kSuggest;
  suggest.request_id = 1;
  store::WalEncoder enc2;
  enc2.PutString("sess");
  suggest.body = enc2.bytes();
  EXPECT_FALSE(serve::DecodeObserve(suggest).ok());
  EXPECT_TRUE(serve::DecodeSuggest(suggest).ok());
}

TEST(ServeProtocolTest, StatusHeaderRoundTrips) {
  const Status failed = Status::FailedPrecondition("closed");
  const Status decoded =
      serve::StatusFromHeader(serve::HeaderFromStatus(failed));
  EXPECT_EQ(decoded.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded.message(), "closed");
  EXPECT_TRUE(
      serve::StatusFromHeader(serve::HeaderFromStatus(Status::OK())).ok());
}

// ---------------------------------------------------------------------------
// Frame server over the loopback transport: the full wire path drives a
// session to the same trajectory as the standalone loop.

TEST(ServeFrameServerTest, LoopbackSessionMatchesStandalone) {
  const SessionSpec spec{"wire", OptimizerType::kTpe, 71, WorkloadId::kTatp,
                         81};
  const size_t iterations = 8;
  const std::vector<Observation> standalone =
      StandaloneHistory(spec, iterations);

  SessionManager manager;
  ClientSession client = MakeClient(spec);
  manager.RegisterSpace("small", client.env->space());
  BatchScheduler scheduler(&manager, {});
  FrameServer server(&manager, &scheduler);
  LoopbackTransport transport;
  serve::FrameReader client_reader;
  uint64_t next_request = 1;

  auto exchange = [&](const std::string& bytes) {
    transport.SendToServer(bytes);
    EXPECT_TRUE(server.ServeBuffered(&transport).ok());
    client_reader.Append(transport.DrainClientInbox());
    std::vector<serve::Frame> replies;
    serve::Frame frame;
    while (true) {
      Result<bool> got = client_reader.Next(&frame);
      EXPECT_TRUE(got.ok());
      if (!got.ok() || !*got) break;
      replies.push_back(frame);
    }
    return replies;
  };

  serve::CreateSessionRequest create;
  create.session_id = spec.id;
  create.space_name = "small";
  create.optimizer_type = static_cast<uint8_t>(spec.optimizer);
  create.seed = spec.optimizer_seed;
  create.reference_score = client.env->default_score();
  auto replies =
      exchange(serve::EncodeCreateSession(next_request++, create));
  ASSERT_EQ(replies.size(), 1u);
  Result<serve::CreateSessionResponse> created =
      serve::DecodeCreateSessionResponse(replies[0]);
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(serve::StatusFromHeader(created->header).ok());

  for (size_t iter = 0; iter < iterations; ++iter) {
    replies = exchange(serve::EncodeSuggest(next_request++, {spec.id}));
    ASSERT_EQ(replies.size(), 1u);
    Result<serve::SuggestResponse> suggested =
        serve::DecodeSuggestResponse(replies[0]);
    ASSERT_TRUE(suggested.ok());
    ASSERT_TRUE(serve::StatusFromHeader(suggested->header).ok());
    const Observation outcome =
        client.env->Evaluate(Configuration(suggested->config));
    serve::ObserveRequest observe;
    observe.session_id = spec.id;
    observe.config = outcome.config.values();
    observe.score = outcome.score;
    observe.objective = outcome.objective;
    observe.failed = outcome.failed ? 1 : 0;
    observe.internal_metrics = outcome.internal_metrics;
    replies = exchange(serve::EncodeObserve(next_request++, observe));
    ASSERT_EQ(replies.size(), 1u);
    Result<serve::ObserveResponse> observed =
        serve::DecodeObserveResponse(replies[0]);
    ASSERT_TRUE(observed.ok());
    EXPECT_TRUE(serve::StatusFromHeader(observed->header).ok());
  }
  ExpectBitwiseEqual(standalone, client.env->history(), "loopback");

  // Close, then a suggest for the closed session comes back as a
  // FailedPrecondition response frame — the server never aborts.
  replies = exchange(serve::EncodeCloseSession(next_request++, {spec.id}));
  ASSERT_EQ(replies.size(), 1u);
  Result<serve::CloseSessionResponse> closed =
      serve::DecodeCloseSessionResponse(replies[0]);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(serve::StatusFromHeader(closed->header).ok());
  replies = exchange(serve::EncodeSuggest(next_request++, {spec.id}));
  ASSERT_EQ(replies.size(), 1u);
  Result<serve::SuggestResponse> rejected =
      serve::DecodeSuggestResponse(replies[0]);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(serve::StatusFromHeader(rejected->header).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Serving metrics.

TEST(ServeMetricsTest, ServeMetricsAreRecorded) {
  obs::ScopedMetricsForTest metrics;
  const std::vector<SessionSpec> specs = {
      {"m-1", OptimizerType::kRandomSearch, 1, WorkloadId::kSysbench, 2},
      {"m-2", OptimizerType::kRandomSearch, 3, WorkloadId::kSysbench, 4},
  };
  (void)ServedHistories(specs, 3, /*batch_width=*/8, /*batched=*/true);
  auto& registry = obs::MetricsRegistry::Get();
  const obs::Gauge* active = registry.FindGauge("serve.sessions.active");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->value(), 2.0);  // never closed in ServedHistories
  const obs::Histogram* latency =
      registry.FindHistogram("serve.suggest.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u * 3u);
  const obs::Histogram* width = registry.FindHistogram("serve.batch.width");
  ASSERT_NE(width, nullptr);
  EXPECT_GT(width->count(), 0u);
}

}  // namespace
}  // namespace dbtune
