#include "core/tuning_session.h"

#include <gtest/gtest.h>

#include "knobs/catalog.h"

namespace dbtune {
namespace {

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(TuningSessionTest, TracesHaveRightShape) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 1);
  const SessionResult result = RunTuningSession(
      &sim, FirstKnobs(sim.space().dimension()), OptimizerType::kSmac, 30, 2);
  EXPECT_EQ(result.improvement_trace.size(), 30u);
  EXPECT_EQ(result.objective_trace.size(), 30u);
  EXPECT_DOUBLE_EQ(result.final_improvement, result.improvement_trace.back());
  EXPECT_DOUBLE_EQ(result.final_objective, result.objective_trace.back());
  EXPECT_GT(result.simulated_evaluation_seconds, 0.0);
}

TEST(TuningSessionTest, BestSoFarTracesAreMonotone) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kTpcc,
                    HardwareInstance::kB, 3);
  const SessionResult result = RunTuningSession(
      &sim, FirstKnobs(sim.space().dimension()), OptimizerType::kRandomSearch,
      40, 4);
  for (size_t i = 1; i < result.improvement_trace.size(); ++i) {
    EXPECT_GE(result.improvement_trace[i], result.improvement_trace[i - 1]);
    // Throughput objective: the best-so-far objective also rises.
    EXPECT_GE(result.objective_trace[i], result.objective_trace[i - 1]);
  }
}

TEST(TuningSessionTest, LatencyWorkloadTraceDecreases) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kJob,
                    HardwareInstance::kB, 5);
  const SessionResult result = RunTuningSession(
      &sim, FirstKnobs(sim.space().dimension()), OptimizerType::kSmac, 30, 6);
  for (size_t i = 1; i < result.objective_trace.size(); ++i) {
    EXPECT_LE(result.objective_trace[i], result.objective_trace[i - 1]);
  }
  EXPECT_GE(result.final_improvement, 0.0);
}

TEST(TuningSessionTest, OverheadRecordedWhenRequested) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kTatp,
                    HardwareInstance::kB, 7);
  SessionControls controls;
  controls.record_overhead = true;
  TuningEnvironment env(&sim, FirstKnobs(sim.space().dimension()));
  OptimizerOptions options;
  options.seed = 8;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(OptimizerType::kVanillaBo, env.space(), options);
  const SessionResult result =
      RunTuningSession(&env, optimizer.get(), 20, controls);
  EXPECT_EQ(result.per_iteration_overhead.size(), 20u);
  EXPECT_GE(result.algorithm_overhead_seconds, 0.0);
  double total = 0.0;
  for (double t : result.per_iteration_overhead) total += t;
  EXPECT_NEAR(total, result.algorithm_overhead_seconds, 1e-6);
}

TEST(TuningSessionTest, SmacFindsImprovementOnSysbench) {
  // The headline behaviour: model-based tuning improves over the default.
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 9);
  TuningEnvironment env(&sim, FirstKnobs(20));
  OptimizerOptions options;
  options.seed = 10;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(OptimizerType::kSmac, env.space(), options);
  const SessionResult result = RunTuningSession(&env, optimizer.get(), 60);
  EXPECT_GT(result.final_improvement, 0.0);
  EXPECT_GT(result.best_iteration, 0u);
  EXPECT_LE(result.best_iteration, 60u);
}

}  // namespace
}  // namespace dbtune
