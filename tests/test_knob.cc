#include "knobs/knob.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(KnobTest, ContinuousBasics) {
  Knob k = Knob::Continuous("ratio", 0.0, 100.0, 75.0);
  EXPECT_EQ(k.type(), KnobType::kContinuous);
  EXPECT_FALSE(k.is_categorical());
  EXPECT_DOUBLE_EQ(k.default_value(), 75.0);
  EXPECT_DOUBLE_EQ(k.Encode(50.0), 0.5);
  EXPECT_DOUBLE_EQ(k.Decode(0.25), 25.0);
}

TEST(KnobTest, ContinuousEncodeDecodeRoundTrip) {
  Knob k = Knob::Continuous("x", -5.0, 5.0, 0.0);
  for (double v : {-5.0, -1.25, 0.0, 3.75, 5.0}) {
    EXPECT_NEAR(k.Decode(k.Encode(v)), v, 1e-12);
  }
}

TEST(KnobTest, LogScaleEncodeDecode) {
  Knob k = Knob::Continuous("size", 1.0, 1024.0, 32.0, /*log_scale=*/true);
  EXPECT_NEAR(k.Encode(32.0), 0.5, 1e-12);  // 32 = sqrt(1 * 1024)
  EXPECT_NEAR(k.Decode(0.5), 32.0, 1e-9);
  EXPECT_DOUBLE_EQ(k.Encode(1.0), 0.0);
  EXPECT_DOUBLE_EQ(k.Encode(1024.0), 1.0);
}

TEST(KnobTest, IntegerRoundsOnDecode) {
  Knob k = Knob::Integer("count", 0, 10, 5);
  EXPECT_EQ(k.type(), KnobType::kInteger);
  const double v = k.Decode(0.449);
  EXPECT_DOUBLE_EQ(v, std::round(v));
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 10.0);
}

TEST(KnobTest, IntegerClipRounds) {
  Knob k = Knob::Integer("count", 0, 10, 5);
  EXPECT_DOUBLE_EQ(k.Clip(3.6), 4.0);
  EXPECT_DOUBLE_EQ(k.Clip(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(k.Clip(99.0), 10.0);
}

TEST(KnobTest, CategoricalEncodeDecodeAllCategories) {
  Knob k = Knob::Categorical("mode", {"a", "b", "c"}, 1);
  EXPECT_TRUE(k.is_categorical());
  EXPECT_EQ(k.num_categories(), 3u);
  EXPECT_DOUBLE_EQ(k.default_value(), 1.0);
  for (size_t c = 0; c < 3; ++c) {
    const double unit = k.Encode(static_cast<double>(c));
    EXPECT_GE(unit, 0.0);
    EXPECT_LE(unit, 1.0);
    EXPECT_DOUBLE_EQ(k.Decode(unit), static_cast<double>(c));
  }
}

TEST(KnobTest, CategoricalDecodeCoversUniformly) {
  Knob k = Knob::Categorical("mode", {"a", "b"}, 0);
  EXPECT_DOUBLE_EQ(k.Decode(0.0), 0.0);
  EXPECT_DOUBLE_EQ(k.Decode(0.49), 0.0);
  EXPECT_DOUBLE_EQ(k.Decode(0.51), 1.0);
  EXPECT_DOUBLE_EQ(k.Decode(1.0), 1.0);
}

TEST(KnobTest, IsValid) {
  Knob k = Knob::Integer("count", 1, 8, 4);
  EXPECT_TRUE(k.IsValid(1));
  EXPECT_TRUE(k.IsValid(8));
  EXPECT_FALSE(k.IsValid(0));
  EXPECT_FALSE(k.IsValid(9));
  EXPECT_FALSE(k.IsValid(std::nan("")));
}

TEST(KnobTest, DecodeClampsOutOfRangeUnit) {
  Knob k = Knob::Continuous("x", 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(k.Decode(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(k.Decode(1.5), 1.0);
}

TEST(KnobTest, TypeNames) {
  EXPECT_STREQ(KnobTypeName(KnobType::kContinuous), "continuous");
  EXPECT_STREQ(KnobTypeName(KnobType::kInteger), "integer");
  EXPECT_STREQ(KnobTypeName(KnobType::kCategorical), "categorical");
}

// Property sweep: encode/decode round trip over knob variants.
class KnobRoundTripTest : public ::testing::TestWithParam<Knob> {};

TEST_P(KnobRoundTripTest, DecodeEncodeIsIdempotent) {
  const Knob& k = GetParam();
  for (int i = 0; i <= 20; ++i) {
    const double unit = static_cast<double>(i) / 20.0;
    const double native = k.Decode(unit);
    EXPECT_TRUE(k.IsValid(native)) << k.name() << " unit=" << unit;
    // Decoding the re-encoded value must be a fixed point.
    EXPECT_NEAR(k.Decode(k.Encode(native)), native, 1e-9) << k.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, KnobRoundTripTest,
    ::testing::Values(
        Knob::Continuous("lin", 0.0, 10.0, 5.0),
        Knob::Continuous("neg", -3.0, 3.0, 0.0),
        Knob::Continuous("log", 0.5, 512.0, 16.0, true),
        Knob::Integer("int", 0, 100, 50),
        Knob::Integer("int_log", 1, 1 << 20, 64, true),
        Knob::Categorical("cat2", {"off", "on"}, 0),
        Knob::Categorical("cat5", {"a", "b", "c", "d", "e"}, 2)),
    [](const ::testing::TestParamInfo<Knob>& info) {
      return info.param.name();
    });

}  // namespace
}  // namespace dbtune
