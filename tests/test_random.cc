#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsBijection) {
  Rng rng(17);
  const std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 49u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> values(sample.begin(), sample.end());
  EXPECT_EQ(values.size(), 30u);
  for (size_t v : values) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(19);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> values(sample.begin(), sample.end());
  EXPECT_EQ(values.size(), 5u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.WeightedIndex(weights));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's.
  bool differed = false;
  Rng parent_copy(31);
  parent_copy.Fork();
  for (int i = 0; i < 10; ++i) {
    if (child.Uniform() != parent.Uniform()) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(37);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

}  // namespace
}  // namespace dbtune
