#include "util/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b = Matrix::Identity(2);
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);

  Matrix d = a.Multiply(a);
  EXPECT_DOUBLE_EQ(d(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 22.0);
}

TEST(MatrixTest, MultiplyBlockedMatchesReference) {
  // Non-square shapes that straddle the 64-wide cache block, so every
  // partial-block edge case of the i-k-j kernel is exercised.
  const size_t n = 67, k = 130, m = 71;
  Matrix a(n, k), b(k, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      a(i, j) = std::sin(static_cast<double>(i * k + j));
    }
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < m; ++j) {
      b(i, j) = std::cos(static_cast<double>(i * m + j));
    }
  }
  const Matrix c = a.Multiply(b);
  ASSERT_EQ(c.rows(), n);
  ASSERT_EQ(c.cols(), m);
  // Reference: textbook dot-product form, spot-checked on a grid.
  for (size_t i = 0; i < n; i += 13) {
    for (size_t j = 0; j < m; j += 17) {
      double expected = 0.0;
      for (size_t t = 0; t < k; ++t) expected += a(i, t) * b(t, j);
      EXPECT_NEAR(c(i, j), expected, 1e-9);
    }
  }
}

TEST(MatrixDeathTest, MultiplyShapeMismatchChecks) {
  // Multiply is CHECK-guarded (programmer error, not recoverable input):
  // a 2x3 times 2x2 must abort rather than read out of bounds.
  Matrix a(2, 3, 1.0);
  Matrix b(2, 2, 1.0);
  EXPECT_DEATH(a.Multiply(b), "cols_ == other.rows_");
}

TEST(MatrixDeathTest, MultiplyVectorShapeMismatchChecks) {
  Matrix a(2, 3, 1.0);
  EXPECT_DEATH(a.MultiplyVector({1.0, 2.0}), "cols_ == v.size");
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 0;
  a(0, 2) = 2;
  a(1, 0) = 0;
  a(1, 1) = 3;
  a(1, 2) = 0;
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const std::vector<double> out = a.MultiplyVector(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m(2, 2, 1.0);
  m.AddDiagonal(0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
}

TEST(CholeskyTest, FactorizesSpdMatrix) {
  // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  ASSERT_TRUE(CholeskyFactorize(&a).ok());
  EXPECT_NEAR(a(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(a(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(a(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);  // upper part zeroed
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3 and -1
  EXPECT_FALSE(CholeskyFactorize(&a).ok());
}

TEST(SolveTest, TriangularSolves) {
  Matrix l(2, 2);
  l(0, 0) = 2;
  l(1, 0) = 1;
  l(1, 1) = 3;
  const std::vector<double> b = {4.0, 11.0};
  const std::vector<double> x = SolveLowerTriangular(l, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);

  // L^T y = b  =>  [2 1; 0 3] y = [4; 11].
  const std::vector<double> y = SolveUpperTriangularFromLower(l, b);
  EXPECT_NEAR(y[1], 11.0 / 3.0, 1e-12);
  EXPECT_NEAR(y[0], (4.0 - y[1]) / 2.0, 1e-12);
}

TEST(SolveTest, SolveSpdRoundTrip) {
  Matrix a(3, 3, 0.0);
  // SPD via A = M M^T + I with a simple M.
  a(0, 0) = 5;
  a(0, 1) = 1;
  a(0, 2) = 0;
  a(1, 0) = 1;
  a(1, 1) = 4;
  a(1, 2) = 1;
  a(2, 0) = 0;
  a(2, 1) = 1;
  a(2, 2) = 3;
  const std::vector<double> truth = {1.0, -2.0, 0.5};
  const std::vector<double> b = a.MultiplyVector(truth);
  Result<std::vector<double>> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], truth[i], 1e-10);
}

TEST(SolveTest, SolveSpdShapeMismatch) {
  Matrix a(2, 2, 1.0);
  Result<std::vector<double>> x = SolveSpd(a, {1.0, 2.0, 3.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(VectorOpsTest, DotAndDistance) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

}  // namespace
}  // namespace dbtune
