#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "knobs/catalog.h"
#include "sampling/latin_hypercube.h"
#include "sampling/sobol.h"

namespace dbtune {
namespace {

TEST(LatinHypercubeTest, StratifiesEveryDimension) {
  Rng rng(1);
  const size_t n = 16, d = 4;
  const auto points = LatinHypercubeUnit(n, d, rng);
  ASSERT_EQ(points.size(), n);
  for (size_t dim = 0; dim < d; ++dim) {
    std::set<size_t> bins;
    for (const auto& p : points) {
      EXPECT_GE(p[dim], 0.0);
      EXPECT_LT(p[dim], 1.0);
      bins.insert(static_cast<size_t>(p[dim] * static_cast<double>(n)));
    }
    // Exactly one point per bin per dimension.
    EXPECT_EQ(bins.size(), n) << "dimension " << dim;
  }
}

TEST(LatinHypercubeTest, DeterministicGivenSeed) {
  Rng a(9), b(9);
  const auto pa = LatinHypercubeUnit(8, 3, a);
  const auto pb = LatinHypercubeUnit(8, 3, b);
  EXPECT_EQ(pa, pb);
}

TEST(LatinHypercubeTest, ConfigurationsAreValid) {
  const ConfigurationSpace space = SmallTestCatalog();
  Rng rng(2);
  const auto configs = LatinHypercubeSample(space, 20, rng);
  ASSERT_EQ(configs.size(), 20u);
  for (const Configuration& c : configs) {
    EXPECT_TRUE(space.Validate(c).ok());
  }
}

TEST(QuasiRandomTest, PointsInUnitCube) {
  Rng rng(3);
  QuasiRandomSequence seq(5, rng);
  for (int i = 0; i < 100; ++i) {
    const auto p = seq.Next();
    ASSERT_EQ(p.size(), 5u);
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(QuasiRandomTest, LowDiscrepancyInFirstDimension) {
  Rng rng(4);
  QuasiRandomSequence seq(1, rng);
  const size_t n = 128;
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) values.push_back(seq.Next()[0]);
  std::sort(values.begin(), values.end());
  // Largest gap between consecutive points stays small (far below the
  // ~log(n)/n expected from iid uniforms).
  double max_gap = values.front();
  for (size_t i = 1; i < n; ++i) {
    max_gap = std::max(max_gap, values[i] - values[i - 1]);
  }
  max_gap = std::max(max_gap, 1.0 - values.back());
  EXPECT_LT(max_gap, 0.05);
}

TEST(QuasiRandomTest, SampleProducesValidConfigs) {
  const ConfigurationSpace space = SmallTestCatalog();
  Rng rng(5);
  QuasiRandomSequence seq(space.dimension(), rng);
  const auto configs = seq.Sample(space, 10);
  ASSERT_EQ(configs.size(), 10u);
  for (const Configuration& c : configs) {
    EXPECT_TRUE(space.Validate(c).ok());
  }
}

TEST(QuasiRandomTest, ScramblingVariesWithSeed) {
  Rng a(1), b(2);
  QuasiRandomSequence sa(3, a), sb(3, b);
  bool differed = false;
  for (int i = 0; i < 10; ++i) {
    if (sa.Next() != sb.Next()) differed = true;
  }
  EXPECT_TRUE(differed);
}

}  // namespace
}  // namespace dbtune
