
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmk/data_collector.cc" "src/CMakeFiles/dbtune.dir/benchmk/data_collector.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/benchmk/data_collector.cc.o.d"
  "/root/repo/src/benchmk/dataset_io.cc" "src/CMakeFiles/dbtune.dir/benchmk/dataset_io.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/benchmk/dataset_io.cc.o.d"
  "/root/repo/src/benchmk/surrogate_benchmark.cc" "src/CMakeFiles/dbtune.dir/benchmk/surrogate_benchmark.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/benchmk/surrogate_benchmark.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/dbtune.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/dbtune.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/tuning_session.cc" "src/CMakeFiles/dbtune.dir/core/tuning_session.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/core/tuning_session.cc.o.d"
  "/root/repo/src/dbms/environment.cc" "src/CMakeFiles/dbtune.dir/dbms/environment.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/dbms/environment.cc.o.d"
  "/root/repo/src/dbms/hardware.cc" "src/CMakeFiles/dbtune.dir/dbms/hardware.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/dbms/hardware.cc.o.d"
  "/root/repo/src/dbms/response_surface.cc" "src/CMakeFiles/dbtune.dir/dbms/response_surface.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/dbms/response_surface.cc.o.d"
  "/root/repo/src/dbms/simulator.cc" "src/CMakeFiles/dbtune.dir/dbms/simulator.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/dbms/simulator.cc.o.d"
  "/root/repo/src/dbms/workload.cc" "src/CMakeFiles/dbtune.dir/dbms/workload.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/dbms/workload.cc.o.d"
  "/root/repo/src/importance/ablation.cc" "src/CMakeFiles/dbtune.dir/importance/ablation.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/ablation.cc.o.d"
  "/root/repo/src/importance/fanova.cc" "src/CMakeFiles/dbtune.dir/importance/fanova.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/fanova.cc.o.d"
  "/root/repo/src/importance/gini.cc" "src/CMakeFiles/dbtune.dir/importance/gini.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/gini.cc.o.d"
  "/root/repo/src/importance/importance.cc" "src/CMakeFiles/dbtune.dir/importance/importance.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/importance.cc.o.d"
  "/root/repo/src/importance/incremental.cc" "src/CMakeFiles/dbtune.dir/importance/incremental.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/incremental.cc.o.d"
  "/root/repo/src/importance/lasso.cc" "src/CMakeFiles/dbtune.dir/importance/lasso.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/lasso.cc.o.d"
  "/root/repo/src/importance/shap.cc" "src/CMakeFiles/dbtune.dir/importance/shap.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/importance/shap.cc.o.d"
  "/root/repo/src/knobs/catalog.cc" "src/CMakeFiles/dbtune.dir/knobs/catalog.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/knobs/catalog.cc.o.d"
  "/root/repo/src/knobs/configuration.cc" "src/CMakeFiles/dbtune.dir/knobs/configuration.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/knobs/configuration.cc.o.d"
  "/root/repo/src/knobs/configuration_space.cc" "src/CMakeFiles/dbtune.dir/knobs/configuration_space.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/knobs/configuration_space.cc.o.d"
  "/root/repo/src/knobs/knob.cc" "src/CMakeFiles/dbtune.dir/knobs/knob.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/knobs/knob.cc.o.d"
  "/root/repo/src/nn/adam.cc" "src/CMakeFiles/dbtune.dir/nn/adam.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/nn/adam.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/dbtune.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/nn/mlp.cc.o.d"
  "/root/repo/src/optimizer/ddpg.cc" "src/CMakeFiles/dbtune.dir/optimizer/ddpg.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/ddpg.cc.o.d"
  "/root/repo/src/optimizer/genetic.cc" "src/CMakeFiles/dbtune.dir/optimizer/genetic.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/genetic.cc.o.d"
  "/root/repo/src/optimizer/gp_bo.cc" "src/CMakeFiles/dbtune.dir/optimizer/gp_bo.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/gp_bo.cc.o.d"
  "/root/repo/src/optimizer/mixed_kernel_bo.cc" "src/CMakeFiles/dbtune.dir/optimizer/mixed_kernel_bo.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/mixed_kernel_bo.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/dbtune.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/random_search.cc" "src/CMakeFiles/dbtune.dir/optimizer/random_search.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/random_search.cc.o.d"
  "/root/repo/src/optimizer/smac.cc" "src/CMakeFiles/dbtune.dir/optimizer/smac.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/smac.cc.o.d"
  "/root/repo/src/optimizer/tpe.cc" "src/CMakeFiles/dbtune.dir/optimizer/tpe.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/tpe.cc.o.d"
  "/root/repo/src/optimizer/turbo.cc" "src/CMakeFiles/dbtune.dir/optimizer/turbo.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/optimizer/turbo.cc.o.d"
  "/root/repo/src/sampling/latin_hypercube.cc" "src/CMakeFiles/dbtune.dir/sampling/latin_hypercube.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/sampling/latin_hypercube.cc.o.d"
  "/root/repo/src/sampling/sobol.cc" "src/CMakeFiles/dbtune.dir/sampling/sobol.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/sampling/sobol.cc.o.d"
  "/root/repo/src/surrogate/cross_validation.cc" "src/CMakeFiles/dbtune.dir/surrogate/cross_validation.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/cross_validation.cc.o.d"
  "/root/repo/src/surrogate/gaussian_process.cc" "src/CMakeFiles/dbtune.dir/surrogate/gaussian_process.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/gaussian_process.cc.o.d"
  "/root/repo/src/surrogate/gradient_boosting.cc" "src/CMakeFiles/dbtune.dir/surrogate/gradient_boosting.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/gradient_boosting.cc.o.d"
  "/root/repo/src/surrogate/kernels.cc" "src/CMakeFiles/dbtune.dir/surrogate/kernels.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/kernels.cc.o.d"
  "/root/repo/src/surrogate/knn.cc" "src/CMakeFiles/dbtune.dir/surrogate/knn.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/knn.cc.o.d"
  "/root/repo/src/surrogate/random_forest.cc" "src/CMakeFiles/dbtune.dir/surrogate/random_forest.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/random_forest.cc.o.d"
  "/root/repo/src/surrogate/regression_tree.cc" "src/CMakeFiles/dbtune.dir/surrogate/regression_tree.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/regression_tree.cc.o.d"
  "/root/repo/src/surrogate/regressor.cc" "src/CMakeFiles/dbtune.dir/surrogate/regressor.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/regressor.cc.o.d"
  "/root/repo/src/surrogate/ridge.cc" "src/CMakeFiles/dbtune.dir/surrogate/ridge.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/ridge.cc.o.d"
  "/root/repo/src/surrogate/svr.cc" "src/CMakeFiles/dbtune.dir/surrogate/svr.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/surrogate/svr.cc.o.d"
  "/root/repo/src/transfer/fine_tune.cc" "src/CMakeFiles/dbtune.dir/transfer/fine_tune.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/transfer/fine_tune.cc.o.d"
  "/root/repo/src/transfer/repository.cc" "src/CMakeFiles/dbtune.dir/transfer/repository.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/transfer/repository.cc.o.d"
  "/root/repo/src/transfer/rgpe.cc" "src/CMakeFiles/dbtune.dir/transfer/rgpe.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/transfer/rgpe.cc.o.d"
  "/root/repo/src/transfer/workload_mapping.cc" "src/CMakeFiles/dbtune.dir/transfer/workload_mapping.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/transfer/workload_mapping.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/dbtune.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/util/logging.cc.o.d"
  "/root/repo/src/util/matrix.cc" "src/CMakeFiles/dbtune.dir/util/matrix.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/util/matrix.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/dbtune.dir/util/random.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/dbtune.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/dbtune.dir/util/status.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/dbtune.dir/util/table.cc.o" "gcc" "src/CMakeFiles/dbtune.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
