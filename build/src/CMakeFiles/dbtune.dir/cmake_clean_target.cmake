file(REMOVE_RECURSE
  "libdbtune.a"
)
