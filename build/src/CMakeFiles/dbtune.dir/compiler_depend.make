# Empty compiler generated dependencies file for dbtune.
# This may be replaced when dependencies are built.
