file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_table7_optimizers.dir/bench_fig7_table7_optimizers.cc.o"
  "CMakeFiles/bench_fig7_table7_optimizers.dir/bench_fig7_table7_optimizers.cc.o.d"
  "bench_fig7_table7_optimizers"
  "bench_fig7_table7_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_table7_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
