# Empty dependencies file for bench_table9_surrogate_models.
# This may be replaced when dependencies are built.
