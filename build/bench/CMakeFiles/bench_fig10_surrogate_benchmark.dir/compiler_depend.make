# Empty compiler generated dependencies file for bench_fig10_surrogate_benchmark.
# This may be replaced when dependencies are built.
