file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_surrogate_benchmark.dir/bench_fig10_surrogate_benchmark.cc.o"
  "CMakeFiles/bench_fig10_surrogate_benchmark.dir/bench_fig10_surrogate_benchmark.cc.o.d"
  "bench_fig10_surrogate_benchmark"
  "bench_fig10_surrogate_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_surrogate_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
