file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_incremental.dir/bench_fig6_incremental.cc.o"
  "CMakeFiles/bench_fig6_incremental.dir/bench_fig6_incremental.cc.o.d"
  "bench_fig6_incremental"
  "bench_fig6_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
