# Empty dependencies file for bench_fig6_incremental.
# This may be replaced when dependencies are built.
