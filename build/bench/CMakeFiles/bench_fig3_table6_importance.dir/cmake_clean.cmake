file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_table6_importance.dir/bench_fig3_table6_importance.cc.o"
  "CMakeFiles/bench_fig3_table6_importance.dir/bench_fig3_table6_importance.cc.o.d"
  "bench_fig3_table6_importance"
  "bench_fig3_table6_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_table6_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
