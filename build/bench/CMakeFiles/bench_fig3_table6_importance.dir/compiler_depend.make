# Empty compiler generated dependencies file for bench_fig3_table6_importance.
# This may be replaced when dependencies are built.
