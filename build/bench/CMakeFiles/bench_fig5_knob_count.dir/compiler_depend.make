# Empty compiler generated dependencies file for bench_fig5_knob_count.
# This may be replaced when dependencies are built.
