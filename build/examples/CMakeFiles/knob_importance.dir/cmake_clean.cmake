file(REMOVE_RECURSE
  "CMakeFiles/knob_importance.dir/knob_importance.cc.o"
  "CMakeFiles/knob_importance.dir/knob_importance.cc.o.d"
  "knob_importance"
  "knob_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knob_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
