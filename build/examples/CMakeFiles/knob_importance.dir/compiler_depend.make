# Empty compiler generated dependencies file for knob_importance.
# This may be replaced when dependencies are built.
