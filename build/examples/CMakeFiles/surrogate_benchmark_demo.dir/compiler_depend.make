# Empty compiler generated dependencies file for surrogate_benchmark_demo.
# This may be replaced when dependencies are built.
