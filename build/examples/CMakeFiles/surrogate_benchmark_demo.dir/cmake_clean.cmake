file(REMOVE_RECURSE
  "CMakeFiles/surrogate_benchmark_demo.dir/surrogate_benchmark_demo.cc.o"
  "CMakeFiles/surrogate_benchmark_demo.dir/surrogate_benchmark_demo.cc.o.d"
  "surrogate_benchmark_demo"
  "surrogate_benchmark_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_benchmark_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
