# Empty dependencies file for test_response_surface.
# This may be replaced when dependencies are built.
