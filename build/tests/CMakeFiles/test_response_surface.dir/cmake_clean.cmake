file(REMOVE_RECURSE
  "CMakeFiles/test_response_surface.dir/test_response_surface.cc.o"
  "CMakeFiles/test_response_surface.dir/test_response_surface.cc.o.d"
  "test_response_surface"
  "test_response_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_response_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
