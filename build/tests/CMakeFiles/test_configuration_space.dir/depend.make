# Empty dependencies file for test_configuration_space.
# This may be replaced when dependencies are built.
