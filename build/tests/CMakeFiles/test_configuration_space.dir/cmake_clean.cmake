file(REMOVE_RECURSE
  "CMakeFiles/test_configuration_space.dir/test_configuration_space.cc.o"
  "CMakeFiles/test_configuration_space.dir/test_configuration_space.cc.o.d"
  "test_configuration_space"
  "test_configuration_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_configuration_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
