# Empty dependencies file for test_gaussian_process.
# This may be replaced when dependencies are built.
