file(REMOVE_RECURSE
  "CMakeFiles/test_gaussian_process.dir/test_gaussian_process.cc.o"
  "CMakeFiles/test_gaussian_process.dir/test_gaussian_process.cc.o.d"
  "test_gaussian_process"
  "test_gaussian_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gaussian_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
