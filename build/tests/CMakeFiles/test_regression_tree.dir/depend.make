# Empty dependencies file for test_regression_tree.
# This may be replaced when dependencies are built.
