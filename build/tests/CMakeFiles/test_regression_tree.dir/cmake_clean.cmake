file(REMOVE_RECURSE
  "CMakeFiles/test_regression_tree.dir/test_regression_tree.cc.o"
  "CMakeFiles/test_regression_tree.dir/test_regression_tree.cc.o.d"
  "test_regression_tree"
  "test_regression_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regression_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
