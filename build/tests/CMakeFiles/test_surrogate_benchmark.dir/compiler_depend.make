# Empty compiler generated dependencies file for test_surrogate_benchmark.
# This may be replaced when dependencies are built.
