file(REMOVE_RECURSE
  "CMakeFiles/test_surrogate_benchmark.dir/test_surrogate_benchmark.cc.o"
  "CMakeFiles/test_surrogate_benchmark.dir/test_surrogate_benchmark.cc.o.d"
  "test_surrogate_benchmark"
  "test_surrogate_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surrogate_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
