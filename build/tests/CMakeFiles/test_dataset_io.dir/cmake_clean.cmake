file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_io.dir/test_dataset_io.cc.o"
  "CMakeFiles/test_dataset_io.dir/test_dataset_io.cc.o.d"
  "test_dataset_io"
  "test_dataset_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
