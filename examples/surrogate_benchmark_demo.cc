// Surrogate-benchmark demo (§8 of the paper): collect an offline dataset,
// train the random-forest benchmark, then compare optimizers against the
// surrogate at a tiny fraction of the real evaluation cost.
//
//   $ ./surrogate_benchmark_demo

#include <cstdio>

#include "benchmk/surrogate_benchmark.h"
#include "util/table.h"

int main() {
  using namespace dbtune;

  // Offline data collection (the expensive, one-off step — the paper
  // reports ~13 days of wall time per configuration space; here the
  // simulator stands in for the real DBMS).
  DbmsSimulator dbms(WorkloadId::kSysbench, HardwareInstance::kB, 13);
  const std::vector<size_t> ranking =
      dbms.surface().TunabilityRanking();
  const std::vector<size_t> knobs(ranking.begin(), ranking.begin() + 20);

  CollectionOptions collection;
  collection.lhs_samples = 1500;
  collection.optimizer_guided_samples = 300;
  collection.seed = 21;
  std::printf("Collecting %zu offline samples ...\n",
              collection.lhs_samples + collection.optimizer_guided_samples);
  Result<TuningDataset> dataset = CollectDataset(&dbms, knobs, collection);
  if (!dataset.ok()) {
    std::printf("collection failed: %s\n",
                dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("  would have taken %.1f days on the real system\n",
              dataset->simulated_collection_seconds / 86400.0);

  Result<std::unique_ptr<SurrogateBenchmark>> benchmark =
      SurrogateBenchmark::Build(*dataset);
  if (!benchmark.ok()) {
    std::printf("training failed: %s\n",
                benchmark.status().ToString().c_str());
    return 1;
  }

  // Run optimizers against the cheap benchmark.
  TablePrinter table({"optimizer", "best improvement", "wall seconds",
                      "real-system seconds", "speedup"});
  for (OptimizerType type :
       {OptimizerType::kSmac, OptimizerType::kMixedKernelBo,
        OptimizerType::kTpe, OptimizerType::kRandomSearch}) {
    const size_t evals_before = (*benchmark)->evaluation_count();
    const double secs_before = (*benchmark)->evaluation_seconds();
    const SessionResult result =
        RunSurrogateSession(benchmark->get(), type, 150, 31);
    const double wall = ((*benchmark)->evaluation_seconds() - secs_before) +
                        result.algorithm_overhead_seconds;
    const double real =
        static_cast<double>((*benchmark)->evaluation_count() - evals_before) *
        210.0;
    table.AddRow({OptimizerTypeName(type),
                  TablePrinter::Num(result.final_improvement, 1) + " %",
                  TablePrinter::Num(wall, 2),
                  TablePrinter::Num(real, 0),
                  TablePrinter::Num(real / std::max(wall, 1e-9), 0) + "x"});
  }
  std::printf("\n150-iteration tuning sessions on the surrogate benchmark:\n");
  table.Print();
  return 0;
}
