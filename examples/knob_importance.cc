// Knob-selection demo: collect observations on a simulated DBMS, rank all
// 197 knobs with the five importance measurements of the paper's Table 2,
// and print each measurement's top-10 list side by side.
//
//   $ ./knob_importance [workload]     (default: SYSBENCH)

#include <cstdio>
#include <cstring>

#include "dbms/environment.h"
#include "importance/importance.h"
#include "sampling/latin_hypercube.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dbtune;

  WorkloadId workload = WorkloadId::kSysbench;
  if (argc > 1) {
    for (WorkloadId id : AllWorkloads()) {
      if (std::strcmp(argv[1], WorkloadName(id)) == 0) workload = id;
    }
  }

  DbmsSimulator dbms(workload, HardwareInstance::kB, /*seed=*/11);
  TuningEnvironment env(&dbms);

  // Collect (configuration, performance) observations via LHS.
  const size_t kSamples = 600;
  std::printf("Collecting %zu LHS samples on %s ...\n", kSamples,
              dbms.workload().name);
  Rng rng(3);
  std::vector<Configuration> configs;
  std::vector<double> scores;
  size_t failed = 0;
  for (const Configuration& c :
       LatinHypercubeSample(dbms.space(), kSamples, rng)) {
    const Observation obs = env.Evaluate(c);
    configs.push_back(obs.config);
    scores.push_back(obs.score);
    failed += obs.failed;
  }
  std::printf("  (%zu crashed and were assigned the worst score)\n", failed);

  Result<ImportanceInput> input =
      MakeImportanceInput(dbms.space(), configs, scores,
                          dbms.EffectiveDefault(), env.default_score());
  if (!input.ok()) {
    std::printf("error: %s\n", input.status().ToString().c_str());
    return 1;
  }

  // Rank with each measurement and tabulate the top-10 knobs.
  const size_t kTop = 10;
  std::vector<std::string> headers = {"rank"};
  std::vector<std::vector<std::string>> columns;
  for (MeasurementType type : AllMeasurements()) {
    std::unique_ptr<ImportanceMeasure> measure =
        CreateImportanceMeasure(type, 17);
    std::printf("Ranking with %s ...\n", measure->name().c_str());
    Result<std::vector<double>> importance = measure->Rank(*input);
    if (!importance.ok()) {
      std::printf("  failed: %s\n", importance.status().ToString().c_str());
      return 1;
    }
    headers.push_back(measure->name());
    std::vector<std::string> column;
    for (size_t knob : TopKnobs(*importance, kTop)) {
      column.push_back(dbms.space().knob(knob).name());
    }
    columns.push_back(std::move(column));
  }

  TablePrinter table(headers);
  for (size_t r = 0; r < kTop; ++r) {
    std::vector<std::string> row = {std::to_string(r + 1)};
    for (const auto& column : columns) row.push_back(column[r]);
    table.AddRow(std::move(row));
  }
  std::printf("\nTop-%zu knobs per importance measurement on %s:\n", kTop,
              dbms.workload().name);
  table.Print();
  return 0;
}
