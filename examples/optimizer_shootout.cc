// Optimizer shoot-out: run every optimizer family of the paper's Section 6
// on the same tuning task and print the best-found improvement over
// iterations, as a quick qualitative view of Figure 7.
//
//   $ ./optimizer_shootout [iterations]     (default: 100)

#include <cstdio>
#include <cstdlib>

#include "core/tuning_session.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dbtune;
  const size_t iterations =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 100;

  DbmsSimulator probe(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  const std::vector<size_t> ranking = probe.surface().TunabilityRanking();
  const std::vector<size_t> knobs(ranking.begin(), ranking.begin() + 20);

  std::vector<std::string> headers = {"iteration"};
  std::vector<SessionResult> results;
  for (OptimizerType type : PaperOptimizers()) {
    DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 99);
    headers.push_back(OptimizerTypeName(type));
    std::printf("running %s ...\n", OptimizerTypeName(type));
    results.push_back(RunTuningSession(&sim, knobs, type, iterations, 3));
  }

  TablePrinter table(headers);
  for (size_t i = 9; i < iterations; i += 10) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const SessionResult& r : results) {
      row.push_back(TablePrinter::Num(r.improvement_trace[i], 1) + "%");
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nBest-so-far improvement over iterations (SYSBENCH, top-20 "
              "knobs):\n");
  table.Print();
  return 0;
}
