// Knowledge-transfer demo: build a history repository from four source
// workloads, then tune TPC-C three ways — from scratch (SMAC), with
// OtterTune-style workload mapping, and with the RGPE ensemble — and
// compare how fast each reaches a good configuration.
//
//   $ ./transfer_tuning

#include <cstdio>

#include "core/metrics.h"
#include "core/tuning_session.h"
#include "dbms/environment.h"
#include "transfer/rgpe.h"
#include "transfer/workload_mapping.h"
#include "util/table.h"

int main() {
  using namespace dbtune;
  constexpr size_t kIterations = 80;
  constexpr uint64_t kSeed = 5;

  // Shared knob set across tasks: ground-truth tunable knobs of a probe
  // instance (in production this comes from SHAP over OLTP workloads).
  DbmsSimulator probe(WorkloadId::kTpcc, HardwareInstance::kB, 1);
  const std::vector<size_t> ranking = probe.surface().TunabilityRanking();
  const std::vector<size_t> knobs(ranking.begin(), ranking.begin() + 20);

  // --- Gather historical observations from four source workloads.
  ObservationRepository repository;
  for (WorkloadId source : {WorkloadId::kSeats, WorkloadId::kVoter,
                            WorkloadId::kTatp, WorkloadId::kSmallbank}) {
    DbmsSimulator sim(source, HardwareInstance::kB, kSeed);
    TuningEnvironment env(&sim, knobs);
    OptimizerOptions options;
    options.seed = kSeed;
    std::unique_ptr<Optimizer> smac =
        CreateOptimizer(OptimizerType::kSmac, env.space(), options);
    RunTuningSession(&env, smac.get(), 60);
    repository.AddTask(ObservationRepository::FromHistory(
        WorkloadName(source), env.space(), env.history()));
    std::printf("source %-10s: %zu observations collected\n",
                WorkloadName(source), env.history().size());
  }

  // --- Tune the target three ways.
  auto run = [&](const char* label,
                 auto make_optimizer) -> SessionResult {
    DbmsSimulator sim(WorkloadId::kTpcc, HardwareInstance::kB, kSeed + 99);
    TuningEnvironment env(&sim, knobs);
    OptimizerOptions options;
    options.seed = kSeed + 7;
    std::unique_ptr<Optimizer> optimizer = make_optimizer(env.space(),
                                                          options);
    SessionResult result = RunTuningSession(&env, optimizer.get(),
                                            kIterations);
    std::printf("%-18s best improvement %.1f%% (found at iteration %zu)\n",
                label, result.final_improvement, result.best_iteration);
    return result;
  };

  const SessionResult base =
      run("SMAC (scratch)", [&](const ConfigurationSpace& s,
                                OptimizerOptions o) {
        return CreateOptimizer(OptimizerType::kSmac, s, o);
      });
  const SessionResult mapped =
      run("Mapping (SMAC)", [&](const ConfigurationSpace& s,
                                OptimizerOptions o) {
        return std::unique_ptr<Optimizer>(new WorkloadMappingOptimizer(
            s, o, &repository, TransferBase::kSmac));
      });
  const SessionResult rgpe =
      run("RGPE (SMAC)", [&](const ConfigurationSpace& s,
                             OptimizerOptions o) {
        return std::unique_ptr<Optimizer>(
            new RgpeOptimizer(s, o, &repository, TransferBase::kSmac));
      });

  // --- Report speedup and performance enhancement vs. the scratch run.
  TablePrinter table({"framework", "speedup", "perf. enhancement"});
  for (const auto& [name, result] :
       {std::pair<const char*, const SessionResult*>{"Mapping (SMAC)",
                                                     &mapped},
        {"RGPE (SMAC)", &rgpe}}) {
    const auto speedup = TransferSpeedup(base.objective_trace,
                                         result->objective_trace,
                                         ObjectiveKind::kThroughput);
    const double pe = PerformanceEnhancement(
        base.final_objective, result->final_objective,
        ObjectiveKind::kThroughput);
    table.AddRow({name,
                  speedup ? TablePrinter::Num(*speedup, 2) + "x" : "x (never)",
                  TablePrinter::Num(pe * 100.0, 2) + " %"});
  }
  std::printf("\n");
  table.Print();
  return 0;
}
