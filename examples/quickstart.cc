// Quickstart: tune a simulated MySQL instance end-to-end with the paper's
// recommended path — SHAP knob selection + SMAC optimization.
//
//   $ ./quickstart

#include <cstdio>

#include "core/advisor.h"
#include "util/table.h"

int main() {
  using namespace dbtune;

  // Deploy SYSBENCH on an 8-core / 16 GB instance (the paper's default).
  DbmsSimulator dbms(WorkloadId::kSysbench, HardwareInstance::kB,
                     /*seed=*/42);

  AdvisorOptions options;
  options.importance_samples = 300;  // LHS samples for knob ranking
  options.tuning_knobs = 20;         // prune 197 knobs to the top 20
  options.tuning_iterations = 120;   // optimization budget
  options.seed = 7;

  std::printf("Tuning %s on instance %s (%d cores, %.0f GB RAM)...\n",
              dbms.workload().name, dbms.hardware().name,
              dbms.hardware().cpu_cores, dbms.hardware().ram_gb);

  Result<AdvisorReport> report = TuneDbms(&dbms, options);
  if (!report.ok()) {
    std::printf("tuning failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSelected knobs (by SHAP tunability):\n");
  for (size_t i = 0; i < report->selected_knob_names.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1, report->selected_knob_names[i].c_str());
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"default throughput (tps)",
                TablePrinter::Num(report->default_objective, 1)});
  table.AddRow({"tuned throughput (tps)",
                TablePrinter::Num(report->best_objective, 1)});
  table.AddRow({"improvement",
                TablePrinter::Num(report->improvement_percent, 1) + " %"});
  table.AddRow({"best found at iteration",
                std::to_string(report->session.best_iteration)});
  table.AddRow({"simulated DBMS hours",
                TablePrinter::Num(
                    dbms.simulated_seconds() / 3600.0, 1)});
  std::printf("\n");
  table.Print();

  std::printf("\nRecommended configuration changes (tuned knobs):\n");
  const Configuration defaults = dbms.EffectiveDefault();
  for (size_t i = 0; i < report->selected_knobs.size(); ++i) {
    const size_t knob_index = report->selected_knobs[i];
    const Knob& knob = dbms.space().knob(knob_index);
    const double tuned = report->best_config[knob_index];
    if (tuned == defaults[knob_index]) continue;
    if (knob.is_categorical()) {
      std::printf("  %-42s %s -> %s\n", knob.name().c_str(),
                  knob.categories()[static_cast<size_t>(
                      defaults[knob_index])].c_str(),
                  knob.categories()[static_cast<size_t>(tuned)].c_str());
    } else {
      std::printf("  %-42s %.6g -> %.6g\n", knob.name().c_str(),
                  defaults[knob_index], tuned);
    }
  }
  return 0;
}
