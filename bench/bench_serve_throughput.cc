// Serving-layer throughput bench (PERF acceptance: >= 3x sessions/sec
// for batched vs. unbatched dispatch at 256 concurrent sessions on 8
// threads, with every served trajectory bitwise identical to the
// standalone in-process loop). Sweeps 16/64/256 concurrent sessions,
// pool sizes 1/2/8, and both dispatch modes; each row reports
// sessions/sec, requests/sec, and suggest p50/p99 from the
// serve.suggest.latency histogram. Emits JSON lines to stdout and
// writes them to DBTUNE_BENCH_SERVE_REPORT (default BENCH_SERVE.json in
// the working directory) for CI artifacts. Quick mode:
// DBTUNE_BENCH_SCALE below 0.3 shrinks session counts and iterations
// proportionally.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "knobs/catalog.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/batch_scheduler.h"
#include "serve/session_manager.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

using serve::BatchScheduler;
using serve::SchedulerOptions;
using serve::ServedSessionOptions;
using serve::SessionManager;

// Physical cores of the host, recorded in every row: the batched mode's
// whole-session fan-out converts cores into sessions/sec, so the
// batched-vs-unbatched ratio a report shows is bounded by this number —
// a single-core container measures dispatch overhead, not scaling.
size_t HostCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t Effective(size_t full, size_t floor_value) {
  const double factor = std::min(1.0, bench::Scale() / 0.3);
  const auto scaled = static_cast<size_t>(static_cast<double>(full) * factor);
  return std::max(floor_value, scaled);
}

std::string g_report;

void Emit(const char* line) {
  std::printf("%s", line);
  g_report += line;
}

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

// One client per served session: the environment that evaluates the
// server's suggestions. Seeds are a function of the session index so
// every dispatch mode replays the same fleet.
struct Client {
  std::unique_ptr<DbmsSimulator> simulator;
  std::unique_ptr<TuningEnvironment> env;
};

Client MakeClient(size_t index) {
  Client client;
  client.simulator = std::make_unique<DbmsSimulator>(
      SmallTestCatalog(), WorkloadId::kSysbench, HardwareInstance::kB,
      2000 + index);
  client.env = std::make_unique<TuningEnvironment>(
      client.simulator.get(),
      FirstKnobs(client.simulator->space().dimension()));
  return client;
}

std::string SessionId(size_t index) {
  char id[32];
  std::snprintf(id, sizeof(id), "bench-%04zu", index);
  return id;
}

ServedSessionOptions SessionOptions(size_t index, const Client& client) {
  ServedSessionOptions options;
  options.space_name = "small";
  options.optimizer_type = OptimizerType::kVanillaBo;
  options.seed = 1000 + index;
  options.reference_score = client.env->default_score();
  return options;
}

// The ground truth every served combo is checked against: the standalone
// loop of core/tuning_session, one session at a time on a 1-thread pool.
std::vector<std::vector<Observation>> StandaloneHistories(size_t sessions,
                                                          size_t iterations) {
  const size_t original = ExecutionContext::Get().num_threads();
  ExecutionContext::Get().SetNumThreads(1);
  std::vector<std::vector<Observation>> histories(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    Client client = MakeClient(s);
    OptimizerOptions options;
    options.seed = 1000 + s;
    std::unique_ptr<Optimizer> optimizer = CreateOptimizer(
        OptimizerType::kVanillaBo, client.env->space(), options);
    RunTuningSession(client.env.get(), optimizer.get(), iterations);
    histories[s] = client.env->history();
  }
  ExecutionContext::Get().SetNumThreads(original);
  return histories;
}

bool HistoriesEqual(const std::vector<std::vector<Observation>>& a,
                    const std::vector<std::vector<Observation>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t s = 0; s < a.size(); ++s) {
    if (a[s].size() != b[s].size()) return false;
    for (size_t i = 0; i < a[s].size(); ++i) {
      if (!(a[s][i].config == b[s][i].config) ||
          a[s][i].score != b[s][i].score ||
          a[s][i].objective != b[s][i].objective ||
          a[s][i].failed != b[s][i].failed ||
          a[s][i].internal_metrics != b[s][i].internal_metrics) {
        return false;
      }
    }
  }
  return true;
}

struct ComboOutcome {
  double elapsed_s = 0.0;
  double suggest_p50_s = 0.0;
  double suggest_p99_s = 0.0;
  std::vector<std::vector<Observation>> histories;
};

// Drives `sessions` concurrent tuning loops through the serving layer
// for `iterations` rounds at the current pool size. Only the serve loop
// (suggest + observe dispatch and the client evaluations between them)
// is timed; fleet setup is not.
ComboOutcome RunServed(size_t sessions, size_t iterations, bool batched) {
  SessionManager manager;
  std::vector<Client> clients;
  clients.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) clients.push_back(MakeClient(s));
  manager.RegisterSpace("small", clients.front().env->space());
  for (size_t s = 0; s < sessions; ++s) {
    if (!manager.CreateSession(SessionId(s), SessionOptions(s, clients[s]))
             .ok()) {
      std::fprintf(stderr, "create session failed\n");
      std::exit(1);
    }
  }
  SchedulerOptions scheduler_options;
  scheduler_options.batched = batched;
  BatchScheduler scheduler(&manager, scheduler_options);

  obs::Histogram& latency =
      obs::MetricsRegistry::Get().histogram("serve.suggest.latency");
  latency.Reset();

  std::vector<uint64_t> tickets(sessions);
  std::vector<Observation> outcomes(sessions);
  const double start = obs::MonotonicSeconds();
  for (size_t iter = 0; iter < iterations; ++iter) {
    for (size_t s = 0; s < sessions; ++s) {
      tickets[s] = scheduler.EnqueueSuggest(SessionId(s));
    }
    scheduler.Drain();
    for (size_t s = 0; s < sessions; ++s) {
      Result<Configuration> suggested = scheduler.TakeSuggest(tickets[s]);
      if (!suggested.ok()) {
        std::fprintf(stderr, "suggest failed: %s\n",
                     suggested.status().ToString().c_str());
        std::exit(1);
      }
      outcomes[s] = clients[s].env->Evaluate(*suggested);
    }
    for (size_t s = 0; s < sessions; ++s) {
      tickets[s] = scheduler.EnqueueObserve(SessionId(s), outcomes[s]);
    }
    scheduler.Drain();
    for (size_t s = 0; s < sessions; ++s) {
      if (!scheduler.TakeObserve(tickets[s]).ok()) {
        std::fprintf(stderr, "observe failed\n");
        std::exit(1);
      }
    }
  }

  ComboOutcome outcome;
  outcome.elapsed_s = obs::MonotonicSeconds() - start;
  outcome.suggest_p50_s = latency.Percentile(0.5);
  outcome.suggest_p99_s = latency.Percentile(0.99);
  outcome.histories.reserve(sessions);
  for (Client& client : clients) {
    outcome.histories.push_back(client.env->history());
  }
  return outcome;
}

void BenchServeThroughput() {
  const size_t iterations = Effective(20, 12);
  const std::vector<size_t> session_counts = {
      Effective(16, 4), Effective(64, 8), Effective(256, 16)};
  // Standalone baselines per session count, shared across pool sizes and
  // dispatch modes.
  std::map<size_t, std::vector<std::vector<Observation>>> baselines;
  for (size_t sessions : session_counts) {
    baselines[sessions] = StandaloneHistories(sessions, iterations);
  }

  for (size_t threads : {1u, 2u, 8u}) {
    const size_t original = ExecutionContext::Get().num_threads();
    ExecutionContext::Get().SetNumThreads(threads);
    for (size_t sessions : session_counts) {
      double per_mode_rate[2] = {0.0, 0.0};
      bool per_mode_identical[2] = {false, false};
      for (bool batched : {false, true}) {
        const ComboOutcome outcome =
            RunServed(sessions, iterations, batched);
        const bool identical =
            HistoriesEqual(baselines[sessions], outcome.histories);
        const double sessions_per_sec =
            outcome.elapsed_s > 0.0
                ? static_cast<double>(sessions) / outcome.elapsed_s
                : 0.0;
        const double requests_per_sec =
            outcome.elapsed_s > 0.0
                ? static_cast<double>(2 * sessions * iterations) /
                      outcome.elapsed_s
                : 0.0;
        per_mode_rate[batched ? 1 : 0] = sessions_per_sec;
        per_mode_identical[batched ? 1 : 0] = identical;
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "{\"bench\":\"serve_throughput\",\"task\":\"loop\","
            "\"sessions\":%zu,\"iterations\":%zu,\"threads\":%zu,"
            "\"host_cpus\":%zu,\"mode\":\"%s\",\"elapsed_s\":%.6f,"
            "\"sessions_per_sec\":%.2f,\"requests_per_sec\":%.1f,"
            "\"suggest_p50_ms\":%.4f,\"suggest_p99_ms\":%.4f,"
            "\"identical\":%s}\n",
            sessions, iterations, threads, HostCpus(),
            batched ? "batched" : "unbatched", outcome.elapsed_s,
            sessions_per_sec, requests_per_sec, outcome.suggest_p50_s * 1e3,
            outcome.suggest_p99_s * 1e3, identical ? "true" : "false");
        Emit(line);
      }
      char line[512];
      std::snprintf(
          line, sizeof(line),
          "{\"bench\":\"serve_throughput\",\"task\":\"speedup\","
          "\"sessions\":%zu,\"threads\":%zu,\"host_cpus\":%zu,"
          "\"batched_sessions_per_sec\":%.2f,"
          "\"unbatched_sessions_per_sec\":%.2f,\"speedup\":%.2f,"
          "\"identical\":%s}\n",
          sessions, threads, HostCpus(), per_mode_rate[1], per_mode_rate[0],
          per_mode_rate[0] > 0.0 ? per_mode_rate[1] / per_mode_rate[0] : 0.0,
          per_mode_identical[0] && per_mode_identical[1] ? "true" : "false");
      Emit(line);
    }
    ExecutionContext::Get().SetNumThreads(original);
  }
}

void WriteReportFile() {
  const char* path = std::getenv("DBTUNE_BENCH_SERVE_REPORT");
  if (path == nullptr || path[0] == '\0') path = "BENCH_SERVE.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open DBTUNE_BENCH_SERVE_REPORT path %s\n",
                 path);
    return;
  }
  std::fwrite(g_report.data(), 1, g_report.size(), file);
  std::fclose(file);
  std::printf("report written to %s\n", path);
}

}  // namespace
}  // namespace dbtune

int main() {
  dbtune::bench::Banner(
      "Serving-layer throughput: batched vs. unbatched dispatch",
      "16/64/256 concurrent GP-BO sessions through the SessionManager + "
      "BatchScheduler, pool sizes 1/2/8, each trajectory checked bitwise "
      "against the standalone loop");
  // The suggest-latency percentiles come from the serve histogram.
  dbtune::obs::SetMetricsEnabled(true);
  dbtune::BenchServeThroughput();
  dbtune::WriteReportFile();
  return 0;
}
