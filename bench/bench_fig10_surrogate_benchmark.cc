// Reproduces Figure 10 and the §8 speedup report: run the optimizers
// against the random-forest tuning benchmark instead of the (simulated)
// DBMS, verify that the optimizer ordering is preserved, and report the
// wall-clock speedup of surrogate evaluation vs. real stress tests.

#include "bench_util.h"

#include "benchmk/surrogate_benchmark.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 10: tuning performance over the surrogate benchmark",
         "RF surrogate on the SYSBENCH medium-space dataset; 200-iter "
         "sessions, 10 runs; paper speedup 150~311x");

  const size_t samples = ScaledSamples(6250, 1000);
  const size_t iterations = ScaledIters(200, 80);
  const int runs = std::max(2, static_cast<int>(10 * Scale() + 0.5));

  // Build the benchmark from an offline dataset.
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 91);
  const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
  const std::vector<size_t> knobs(ranking.begin(), ranking.begin() + 20);
  CollectionOptions collection;
  collection.lhs_samples = samples;
  collection.optimizer_guided_samples = samples / 5;
  collection.seed = 93;
  std::printf("collecting %zu offline samples ...\n",
              collection.lhs_samples + collection.optimizer_guided_samples);
  Result<TuningDataset> dataset = CollectDataset(&sim, knobs, collection);
  if (!dataset.ok()) {
    std::printf("error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<SurrogateBenchmark>> benchmark =
      SurrogateBenchmark::Build(*dataset);
  if (!benchmark.ok()) {
    std::printf("error: %s\n", benchmark.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"optimizer", "median improvement", "lower quartile",
                      "upper quartile", "session wall s", "speedup vs real"});
  for (OptimizerType type : PaperOptimizers()) {
    std::vector<double> improvements;
    double wall_seconds = 0.0;
    double real_seconds = 0.0;
    std::printf("running %s x %d ...\n", OptimizerTypeName(type), runs);
    for (int run = 0; run < runs; ++run) {
      const size_t evals_before = (*benchmark)->evaluation_count();
      const double eval_secs_before = (*benchmark)->evaluation_seconds();
      const SessionResult result = RunSurrogateSession(
          benchmark->get(), type, iterations, 200 + run);
      improvements.push_back(result.final_improvement);
      wall_seconds += ((*benchmark)->evaluation_seconds() -
                       eval_secs_before) +
                      result.algorithm_overhead_seconds;
      real_seconds += static_cast<double>((*benchmark)->evaluation_count() -
                                          evals_before) *
                      210.0;
    }
    table.AddRow(
        {OptimizerTypeName(type),
         TablePrinter::Num(Median(improvements), 1) + "%",
         TablePrinter::Num(Quantile(improvements, 0.25), 1) + "%",
         TablePrinter::Num(Quantile(improvements, 0.75), 1) + "%",
         TablePrinter::Num(wall_seconds / runs, 2),
         TablePrinter::Num(real_seconds / std::max(wall_seconds, 1e-9), 0) +
             "x"});
  }
  std::printf("\nFigure 10 — optimizers on the surrogate benchmark (paper: "
              "ordering matches the real experiments; 150~311x speedup):\n");
  table.Print();
  return 0;
}
