// Reproduces Figure 7 and Table 7: best performance of the seven
// optimizers over iterations on small (top-5), medium (top-20) and large
// (all 197) configuration spaces, on SYSBENCH and JOB, plus the average
// ranking per space size.
//
// Paper protocol: 200 iterations, 3 runs, knobs ranked by SHAP.

#include "bench_util.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 7 + Table 7: which optimizer is the winner?",
         "7 optimizers x {small=5, medium=20, large=197} knobs x "
         "{SYSBENCH, JOB}, 200 iterations, 3 runs");

  const size_t iterations = ScaledIters(200, 60);
  const int runs = ScaledRuns(3);
  const std::vector<OptimizerType> optimizers = PaperOptimizers();
  struct SpaceSpec {
    const char* name;
    size_t knobs;
  };
  const std::vector<SpaceSpec> spaces = {{"small", 5}, {"medium", 20},
                                         {"large", 197}};

  // ranking accumulation: per space size, scenarios are workloads.
  std::vector<std::vector<std::vector<double>>> per_space_results(
      spaces.size());
  std::vector<std::vector<double>> overall_results;

  for (WorkloadId workload : {WorkloadId::kSysbench, WorkloadId::kJob}) {
    // Knob ranking via SHAP on collected samples (paper protocol).
    DbmsSimulator ranking_sim(workload, HardwareInstance::kB, 1);
    const ImportanceData data =
        CollectImportanceData(&ranking_sim, ScaledSamples(6250, 600), 51);
    const ImportanceInput input =
        MakeImportanceInput(ranking_sim.space(), data.configs, data.scores,
                            ranking_sim.EffectiveDefault(),
                            data.default_score)
            .value();
    std::unique_ptr<ImportanceMeasure> shap =
        CreateImportanceMeasure(MeasurementType::kShap, 53);
    const std::vector<double> importance = shap->Rank(input).value();

    for (size_t space_index = 0; space_index < spaces.size(); ++space_index) {
      const SpaceSpec& spec = spaces[space_index];
      const std::vector<size_t> knobs = TopKnobs(importance, spec.knobs);

      TablePrinter curve({"iteration", "Vanilla BO", "Mixed-Kernel BO",
                          "SMAC", "TPE", "TuRBO", "DDPG", "GA"});
      std::vector<SessionSummary> summaries;
      std::printf("running %s / %s space (%zu knobs) ...\n",
                  WorkloadName(workload), spec.name, spec.knobs);
      for (OptimizerType optimizer : optimizers) {
        summaries.push_back(RunSessions(workload, HardwareInstance::kB,
                                        knobs, optimizer, iterations, runs,
                                        700 + 31 * space_index));
      }
      for (size_t i = iterations / 8; i <= iterations;
           i += iterations / 8) {
        const size_t idx = std::min(i, iterations) - 1;
        std::vector<std::string> row = {std::to_string(idx + 1)};
        for (const SessionSummary& summary : summaries) {
          std::vector<double> at;
          for (const SessionResult& run : summary.runs) {
            at.push_back(run.improvement_trace[idx]);
          }
          row.push_back(TablePrinter::Num(Median(at), 1) + "%");
        }
        curve.AddRow(std::move(row));
      }
      std::printf("Figure 7 — %s, %s space (median best-so-far "
                  "improvement):\n",
                  WorkloadName(workload), spec.name);
      curve.Print();
      std::printf("\n");

      std::vector<double> finals;
      for (const SessionSummary& summary : summaries) {
        finals.push_back(summary.median_improvement);
      }
      per_space_results[space_index].push_back(finals);
      overall_results.push_back(finals);
    }
  }

  // Table 7: average rankings per space size and overall.
  TablePrinter table7({"Space", "Vanilla BO", "Mixed-Kernel BO", "SMAC",
                       "TPE", "TuRBO", "DDPG", "GA"});
  for (size_t space_index = 0; space_index < spaces.size(); ++space_index) {
    const std::vector<double> ranks =
        AverageRanks(per_space_results[space_index], true);
    std::vector<std::string> row = {spaces[space_index].name};
    for (double r : ranks) row.push_back(TablePrinter::Num(r, 2));
    table7.AddRow(std::move(row));
  }
  const std::vector<double> overall = AverageRanks(overall_results, true);
  std::vector<std::string> row = {"Overall"};
  for (double r : overall) row.push_back(TablePrinter::Num(r, 2));
  table7.AddRow(std::move(row));
  std::printf("Table 7 — average optimizer ranking (lower = better; paper: "
              "SMAC best overall at 1.72, TPE worst at 5.94):\n");
  table7.Print();
  return 0;
}
