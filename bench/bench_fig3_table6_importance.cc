// Reproduces Figure 3 and Table 6: tuning improvement over the top-5 /
// top-20 knob sets chosen by each importance measurement (Lasso, Gini,
// fANOVA, Ablation, SHAP), tuned with vanilla BO and DDPG, plus the
// overall average ranking per measurement.
//
// Paper protocol: 6250 LHS samples per workload for ranking; 200-iteration
// tuning sessions; workloads SYSBENCH (throughput) and JOB (latency).

#include "bench_util.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 3 + Table 6: importance measurements",
         "6250 samples, top-5/20 knobs, vanilla BO & DDPG, 200 iters, "
         "SYSBENCH + JOB");

  const size_t samples = ScaledSamples(6250, 600);
  const size_t iterations = ScaledIters(200, 60);
  const int runs = ScaledRuns(3);

  const std::vector<WorkloadId> workloads = {WorkloadId::kSysbench,
                                             WorkloadId::kJob};
  const std::vector<size_t> set_sizes = {5, 20};
  const std::vector<OptimizerType> optimizers = {OptimizerType::kVanillaBo,
                                                 OptimizerType::kDdpg};

  // scenario -> per-measurement improvement (for the Table 6 ranking).
  std::vector<std::vector<double>> scenario_results;

  TablePrinter fig3({"workload", "knobs", "optimizer", "Lasso", "Gini",
                     "fANOVA", "Ablation", "SHAP"});

  for (WorkloadId workload : workloads) {
    DbmsSimulator sim(workload, HardwareInstance::kB, 1);
    std::printf("collecting %zu samples on %s ...\n", samples,
                WorkloadName(workload));
    const ImportanceData data = CollectImportanceData(&sim, samples, 11);
    Result<ImportanceInput> input = MakeImportanceInput(
        sim.space(), data.configs, data.scores, sim.EffectiveDefault(),
        data.default_score);
    if (!input.ok()) {
      std::printf("error: %s\n", input.status().ToString().c_str());
      return 1;
    }

    // Rank once per measurement.
    std::vector<std::vector<double>> rankings;
    for (MeasurementType type : AllMeasurements()) {
      std::unique_ptr<ImportanceMeasure> measure =
          CreateImportanceMeasure(type, 13);
      std::printf("  ranking with %s ...\n", measure->name().c_str());
      Result<std::vector<double>> importance = measure->Rank(*input);
      if (!importance.ok()) {
        std::printf("error: %s\n",
                    importance.status().ToString().c_str());
        return 1;
      }
      rankings.push_back(std::move(importance.value()));
    }

    for (size_t k : set_sizes) {
      for (OptimizerType optimizer : optimizers) {
        std::string set_label = "top-";
        set_label += std::to_string(k);  // gcc-12 -Wrestrict false positive
        std::vector<std::string> row = {WorkloadName(workload), set_label,
                                        OptimizerTypeName(optimizer)};
        std::vector<double> per_measurement;
        for (size_t m = 0; m < rankings.size(); ++m) {
          const std::vector<size_t> knobs = TopKnobs(rankings[m], k);
          const SessionSummary summary =
              RunSessions(workload, HardwareInstance::kB, knobs, optimizer,
                          iterations, runs, 400 + 17 * m);
          row.push_back(TablePrinter::Num(summary.median_improvement, 1) +
                        "%");
          per_measurement.push_back(summary.median_improvement);
        }
        fig3.AddRow(std::move(row));
        scenario_results.push_back(std::move(per_measurement));
      }
    }
  }

  std::printf("\nFigure 3 — median improvement per measurement/knob set:\n");
  fig3.Print();

  const std::vector<double> ranks = AverageRanks(scenario_results, true);
  TablePrinter table6({"Measurement", "Lasso", "Gini", "fANOVA",
                       "Ablation", "SHAP"});
  std::vector<std::string> rank_row = {"Overall Ranking"};
  for (double r : ranks) rank_row.push_back(TablePrinter::Num(r, 2));
  table6.AddRow(std::move(rank_row));
  std::printf("\nTable 6 — overall performance ranking (lower = better; "
              "paper: SHAP best at 1.13, Ablation worst at 4.30):\n");
  table6.Print();
  return 0;
}
