// GP scaling micro-bench for the incremental-fit, batched-predict, and
// sparse-tier paths (PERF acceptance: >= 5x on non-hyperopt sequential
// fits at n = 500, >= 2x on batched acquisition scoring, >= 10x on the
// sparse fit at n = 10000 against the cubic-extrapolated exact fit).
// Emits JSON lines to stdout and writes them to DBTUNE_BENCH_GP_REPORT
// (default BENCH_GP.json in the working directory) for CI artifacts.
// Every row records the effective thread-pool size (`threads`), which
// honours DBTUNE_NUM_THREADS. Quick mode: DBTUNE_BENCH_SCALE below 0.3
// shrinks sizes proportionally. DBTUNE_BENCH_SIZES (comma-separated n
// list, taken literally) overrides the sparse_fit sizes, and
// DBTUNE_BENCH_EXACT_MAX caps the largest directly-measured exact fit.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/sparse_gaussian_process.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

// Sizes replicate the acceptance protocol at the default scale (0.3) and
// above; quick mode (e.g. the perf-labeled ctest at 0.05) shrinks them.
size_t Effective(size_t full, size_t floor_value) {
  const double factor = std::min(1.0, bench::Scale() / 0.3);
  const auto scaled = static_cast<size_t>(static_cast<double>(full) * factor);
  return std::max(floor_value, scaled);
}

FeatureMatrix RandomInputs(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x(n, std::vector<double>(d));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  return x;
}

std::vector<double> SyntheticTargets(const FeatureMatrix& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double s = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      s += std::sin(3.0 * row[j]) * static_cast<double>(j + 1);
    }
    y.push_back(s);
  }
  return y;
}

std::string g_report;

void Emit(const char* line) {
  std::printf("%s", line);
  g_report += line;
}

uint64_t IncrementalFitCount() {
  const obs::Histogram* hist =
      obs::MetricsRegistry::Get().FindHistogram("gp.fit.incremental");
  return hist == nullptr ? 0 : hist->count();
}

// Times `appends` one-row sequential fits (grid search paid once on the
// warm-up fit, outside the timed region) with the given incremental
// setting; returns seconds and the final LML for the identity check.
struct FitRun {
  double seconds = 0.0;
  double final_lml = 0.0;
};

FitRun TimeSequentialFits(const FeatureMatrix& x, const std::vector<double>& y,
                          size_t appends, bool incremental) {
  GaussianProcessOptions options;
  options.hyperopt_every = 1u << 20;  // grid search on the warm-up fit only
  options.enable_incremental = incremental;
  GaussianProcess gp(std::make_unique<Matern52Kernel>(), options);
  const size_t n0 = x.size() - appends;
  FeatureMatrix head_x(x.begin(), x.begin() + n0);
  std::vector<double> head_y(y.begin(), y.begin() + n0);
  if (!gp.Fit(head_x, head_y).ok()) {
    std::fprintf(stderr, "warm-up fit failed\n");
    std::exit(1);
  }
  FitRun run;
  for (size_t i = 0; i < appends; ++i) {
    head_x.push_back(x[n0 + i]);
    head_y.push_back(y[n0 + i]);
    const double start = obs::MonotonicSeconds();
    if (!gp.Fit(head_x, head_y).ok()) {
      std::fprintf(stderr, "append fit failed\n");
      std::exit(1);
    }
    run.seconds += obs::MonotonicSeconds() - start;
  }
  run.final_lml = gp.log_marginal_likelihood();
  return run;
}

void BenchSequentialFits() {
  const size_t appends = Effective(20, 4);
  for (size_t full_n : {100u, 250u, 500u}) {
    const size_t n = Effective(full_n, 40);
    const FeatureMatrix x = RandomInputs(n, 20, 101 + full_n);
    const std::vector<double> y = SyntheticTargets(x);
    const uint64_t inc_before = IncrementalFitCount();
    const FitRun incremental = TimeSequentialFits(x, y, appends, true);
    const uint64_t inc_fits = IncrementalFitCount() - inc_before;
    const FitRun full = TimeSequentialFits(x, y, appends, false);
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"gp_scaling\",\"task\":\"sequential_fit\",\"n\":%zu,"
        "\"appends\":%zu,\"threads\":%zu,\"incremental_fits\":%llu,"
        "\"full_s\":%.6f,\"incremental_s\":%.6f,\"speedup\":%.2f,"
        "\"identical\":%s}\n",
        n, appends, ExecutionContext::Get().num_threads(),
        static_cast<unsigned long long>(inc_fits), full.seconds,
        incremental.seconds,
        incremental.seconds > 0.0 ? full.seconds / incremental.seconds : 0.0,
        incremental.final_lml == full.final_lml ? "true" : "false");
    Emit(line);
  }
}

void BenchBatchedPredict() {
  const size_t n = Effective(500, 40);
  const size_t num_queries = Effective(2000, 200);
  const FeatureMatrix x = RandomInputs(n, 20, 211);
  const std::vector<double> y = SyntheticTargets(x);
  const FeatureMatrix queries = RandomInputs(num_queries, 20, 223);
  GaussianProcess gp(std::make_unique<Matern52Kernel>());
  if (!gp.Fit(x, y).ok()) {
    std::fprintf(stderr, "fit failed\n");
    std::exit(1);
  }

  // Scalar baseline: the per-candidate loop the optimizers used to run.
  std::vector<double> scalar_means(num_queries), scalar_vars(num_queries);
  const double scalar_start = obs::MonotonicSeconds();
  for (size_t q = 0; q < num_queries; ++q) {
    gp.PredictMeanVar(queries[q], &scalar_means[q], &scalar_vars[q]);
  }
  const double scalar_s = obs::MonotonicSeconds() - scalar_start;

  std::vector<double> batch_means, batch_vars;
  const double batch_start = obs::MonotonicSeconds();
  gp.PredictMeanVarBatch(queries, &batch_means, &batch_vars);
  const double batch_s = obs::MonotonicSeconds() - batch_start;

  const bool identical =
      batch_means == scalar_means && batch_vars == scalar_vars;
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"gp_scaling\",\"task\":\"batched_predict\",\"n\":%zu,"
      "\"queries\":%zu,\"threads\":%zu,\"scalar_s\":%.6f,\"batch_s\":%.6f,"
      "\"speedup\":%.2f,\"identical\":%s}\n",
      n, num_queries, ExecutionContext::Get().num_threads(), scalar_s,
      batch_s, batch_s > 0.0 ? scalar_s / batch_s : 0.0,
      identical ? "true" : "false");
  Emit(line);
}

// Parses a comma-separated list of sizes from `env_name`; returns
// `fallback` when unset/empty.
std::vector<size_t> SizesFromEnv(const char* env_name,
                                 std::vector<size_t> fallback) {
  const char* env = std::getenv(env_name);
  if (env == nullptr || env[0] == '\0') return fallback;
  std::vector<size_t> sizes;
  size_t value = 0;
  bool in_number = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<size_t>(*p - '0');
      in_number = true;
    } else {
      if (in_number) sizes.push_back(value);
      value = 0;
      in_number = false;
      if (*p == '\0') break;
    }
  }
  return sizes.empty() ? fallback : sizes;
}

// Single-combo hyper-parameter grids so the exact baseline and the
// sparse tier pay for one factorization each — the O(n^3) vs O(n*m^2)
// comparison, not a grid-size comparison.
GaussianProcessOptions OneShotExactOptions() {
  GaussianProcessOptions options;
  options.lengthscale_grid = {0.4};
  options.noise_grid = {1e-4};
  options.enable_incremental = false;
  return options;
}

SparseGaussianProcessOptions OneShotSparseOptions() {
  SparseGaussianProcessOptions options;
  options.lengthscale_grid = {0.4};
  options.noise_grid = {1e-4};
  return options;
}

double TimeExactFit(const FeatureMatrix& x, const std::vector<double>& y) {
  GaussianProcess gp(std::make_unique<Matern52Kernel>(), OneShotExactOptions());
  const double start = obs::MonotonicSeconds();
  if (!gp.Fit(x, y).ok()) {
    std::fprintf(stderr, "exact baseline fit failed\n");
    std::exit(1);
  }
  return obs::MonotonicSeconds() - start;
}

// Fits the sparse GP at the given pool size and returns the fingerprint
// used for the cross-pool bitwise identity check: LML, inducing indices,
// and predictions on `queries`.
std::vector<double> SparseFingerprint(const FeatureMatrix& x,
                                      const std::vector<double>& y,
                                      const FeatureMatrix& queries,
                                      size_t pool_size) {
  const size_t original = ExecutionContext::Get().num_threads();
  ExecutionContext::Get().SetNumThreads(pool_size);
  SparseGaussianProcess gp(std::make_unique<Matern52Kernel>(),
                           OneShotSparseOptions());
  if (!gp.Fit(x, y).ok()) {
    std::fprintf(stderr, "sparse fit failed\n");
    std::exit(1);
  }
  std::vector<double> out = {gp.log_marginal_likelihood()};
  for (size_t id : gp.inducing_indices()) {
    out.push_back(static_cast<double>(id));
  }
  std::vector<double> means, vars;
  gp.PredictMeanVarBatch(queries, &means, &vars);
  out.insert(out.end(), means.begin(), means.end());
  out.insert(out.end(), vars.begin(), vars.end());
  ExecutionContext::Get().SetNumThreads(original);
  return out;
}

// The sparse-tier headline: fit cost at n = 10k..100k against the exact
// GP, which is measured directly up to DBTUNE_BENCH_EXACT_MAX and
// extrapolated cubically (t ∝ n³) beyond it. Each row also sweeps pool
// sizes {1, 2, 8} and checks the results are bitwise identical.
void BenchSparseFit() {
  const std::vector<size_t> sizes = SizesFromEnv(
      "DBTUNE_BENCH_SIZES",
      {Effective(10000, 1500), Effective(30000, 4000),
       Effective(100000, 12000)});
  const size_t exact_max =
      SizesFromEnv("DBTUNE_BENCH_EXACT_MAX", {Effective(2000, 400)})[0];
  const size_t d = 20;

  // Cubic calibration point for sizes past the exact ceiling.
  const FeatureMatrix cal_x = RandomInputs(exact_max, d, 307);
  const double cal_s = TimeExactFit(cal_x, SyntheticTargets(cal_x));

  for (size_t n : sizes) {
    const FeatureMatrix x = RandomInputs(n, d, 311 + n);
    const std::vector<double> y = SyntheticTargets(x);
    const FeatureMatrix queries = RandomInputs(32, d, 313);

    SparseGaussianProcess gp(std::make_unique<Matern52Kernel>(),
                             OneShotSparseOptions());
    const double start = obs::MonotonicSeconds();
    if (!gp.Fit(x, y).ok()) {
      std::fprintf(stderr, "sparse fit failed\n");
      std::exit(1);
    }
    const double sparse_s = obs::MonotonicSeconds() - start;

    double exact_s = 0.0;
    const char* exact_mode = nullptr;
    if (n <= exact_max) {
      exact_s = TimeExactFit(x, y);
      exact_mode = "measured";
    } else {
      const double ratio =
          static_cast<double>(n) / static_cast<double>(exact_max);
      exact_s = cal_s * ratio * ratio * ratio;
      exact_mode = "extrapolated";
    }

    const std::vector<double> pool1 = SparseFingerprint(x, y, queries, 1);
    const bool identical = pool1 == SparseFingerprint(x, y, queries, 2) &&
                           pool1 == SparseFingerprint(x, y, queries, 8);

    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"gp_scaling\",\"task\":\"sparse_fit\",\"n\":%zu,"
        "\"m\":%zu,\"threads\":%zu,\"sparse_s\":%.6f,\"exact_s\":%.6f,"
        "\"exact_mode\":\"%s\",\"speedup_vs_exact\":%.2f,\"identical\":%s}"
        "\n",
        n, gp.num_inducing(), ExecutionContext::Get().num_threads(), sparse_s,
        exact_s, exact_mode, sparse_s > 0.0 ? exact_s / sparse_s : 0.0,
        identical ? "true" : "false");
    Emit(line);
  }
}

void WriteReportFile() {
  const char* path = std::getenv("DBTUNE_BENCH_GP_REPORT");
  if (path == nullptr || path[0] == '\0') path = "BENCH_GP.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open DBTUNE_BENCH_GP_REPORT path %s\n", path);
    return;
  }
  std::fwrite(g_report.data(), 1, g_report.size(), file);
  std::fclose(file);
  std::printf("report written to %s\n", path);
}

}  // namespace
}  // namespace dbtune

int main() {
  dbtune::bench::Banner("GP incremental-fit, batched-predict, and sparse-"
                        "tier scaling",
                        "sequential BO fits at n in {100,250,500}, d=20; "
                        "acquisition scoring of 2000 candidates at n=500; "
                        "sparse (FITC) fits at n in {10k,30k,100k}");
  // The incremental-fit counter proves the bordered-append path actually
  // ran (the identity check alone would also pass on silent fallback).
  dbtune::obs::SetMetricsEnabled(true);
  dbtune::BenchSequentialFits();
  dbtune::BenchBatchedPredict();
  dbtune::BenchSparseFit();
  dbtune::WriteReportFile();
  return 0;
}
