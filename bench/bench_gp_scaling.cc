// GP scaling micro-bench for the incremental-fit and batched-predict
// paths (PERF acceptance: >= 5x on non-hyperopt sequential fits at
// n = 500, >= 2x on batched acquisition scoring). Emits JSON lines to
// stdout and writes them to DBTUNE_BENCH_GP_REPORT (default
// BENCH_GP.json in the working directory) for CI artifacts. Quick mode:
// DBTUNE_BENCH_SCALE below 0.3 shrinks sizes proportionally.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "surrogate/gaussian_process.h"
#include "util/random.h"

namespace dbtune {
namespace {

// Sizes replicate the acceptance protocol at the default scale (0.3) and
// above; quick mode (e.g. the perf-labeled ctest at 0.05) shrinks them.
size_t Effective(size_t full, size_t floor_value) {
  const double factor = std::min(1.0, bench::Scale() / 0.3);
  const auto scaled = static_cast<size_t>(static_cast<double>(full) * factor);
  return std::max(floor_value, scaled);
}

FeatureMatrix RandomInputs(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x(n, std::vector<double>(d));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  return x;
}

std::vector<double> SyntheticTargets(const FeatureMatrix& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double s = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      s += std::sin(3.0 * row[j]) * static_cast<double>(j + 1);
    }
    y.push_back(s);
  }
  return y;
}

std::string g_report;

void Emit(const char* line) {
  std::printf("%s", line);
  g_report += line;
}

uint64_t IncrementalFitCount() {
  const obs::Histogram* hist =
      obs::MetricsRegistry::Get().FindHistogram("gp.fit.incremental");
  return hist == nullptr ? 0 : hist->count();
}

// Times `appends` one-row sequential fits (grid search paid once on the
// warm-up fit, outside the timed region) with the given incremental
// setting; returns seconds and the final LML for the identity check.
struct FitRun {
  double seconds = 0.0;
  double final_lml = 0.0;
};

FitRun TimeSequentialFits(const FeatureMatrix& x, const std::vector<double>& y,
                          size_t appends, bool incremental) {
  GaussianProcessOptions options;
  options.hyperopt_every = 1u << 20;  // grid search on the warm-up fit only
  options.enable_incremental = incremental;
  GaussianProcess gp(std::make_unique<Matern52Kernel>(), options);
  const size_t n0 = x.size() - appends;
  FeatureMatrix head_x(x.begin(), x.begin() + n0);
  std::vector<double> head_y(y.begin(), y.begin() + n0);
  if (!gp.Fit(head_x, head_y).ok()) {
    std::fprintf(stderr, "warm-up fit failed\n");
    std::exit(1);
  }
  FitRun run;
  for (size_t i = 0; i < appends; ++i) {
    head_x.push_back(x[n0 + i]);
    head_y.push_back(y[n0 + i]);
    const double start = obs::MonotonicSeconds();
    if (!gp.Fit(head_x, head_y).ok()) {
      std::fprintf(stderr, "append fit failed\n");
      std::exit(1);
    }
    run.seconds += obs::MonotonicSeconds() - start;
  }
  run.final_lml = gp.log_marginal_likelihood();
  return run;
}

void BenchSequentialFits() {
  const size_t appends = Effective(20, 4);
  for (size_t full_n : {100u, 250u, 500u}) {
    const size_t n = Effective(full_n, 40);
    const FeatureMatrix x = RandomInputs(n, 20, 101 + full_n);
    const std::vector<double> y = SyntheticTargets(x);
    const uint64_t inc_before = IncrementalFitCount();
    const FitRun incremental = TimeSequentialFits(x, y, appends, true);
    const uint64_t inc_fits = IncrementalFitCount() - inc_before;
    const FitRun full = TimeSequentialFits(x, y, appends, false);
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"gp_scaling\",\"task\":\"sequential_fit\",\"n\":%zu,"
        "\"appends\":%zu,\"incremental_fits\":%llu,\"full_s\":%.6f,"
        "\"incremental_s\":%.6f,\"speedup\":%.2f,\"identical\":%s}\n",
        n, appends, static_cast<unsigned long long>(inc_fits), full.seconds,
        incremental.seconds,
        incremental.seconds > 0.0 ? full.seconds / incremental.seconds : 0.0,
        incremental.final_lml == full.final_lml ? "true" : "false");
    Emit(line);
  }
}

void BenchBatchedPredict() {
  const size_t n = Effective(500, 40);
  const size_t num_queries = Effective(2000, 200);
  const FeatureMatrix x = RandomInputs(n, 20, 211);
  const std::vector<double> y = SyntheticTargets(x);
  const FeatureMatrix queries = RandomInputs(num_queries, 20, 223);
  GaussianProcess gp(std::make_unique<Matern52Kernel>());
  if (!gp.Fit(x, y).ok()) {
    std::fprintf(stderr, "fit failed\n");
    std::exit(1);
  }

  // Scalar baseline: the per-candidate loop the optimizers used to run.
  std::vector<double> scalar_means(num_queries), scalar_vars(num_queries);
  const double scalar_start = obs::MonotonicSeconds();
  for (size_t q = 0; q < num_queries; ++q) {
    gp.PredictMeanVar(queries[q], &scalar_means[q], &scalar_vars[q]);
  }
  const double scalar_s = obs::MonotonicSeconds() - scalar_start;

  std::vector<double> batch_means, batch_vars;
  const double batch_start = obs::MonotonicSeconds();
  gp.PredictMeanVarBatch(queries, &batch_means, &batch_vars);
  const double batch_s = obs::MonotonicSeconds() - batch_start;

  const bool identical =
      batch_means == scalar_means && batch_vars == scalar_vars;
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"gp_scaling\",\"task\":\"batched_predict\",\"n\":%zu,"
      "\"queries\":%zu,\"threads\":%zu,\"scalar_s\":%.6f,\"batch_s\":%.6f,"
      "\"speedup\":%.2f,\"identical\":%s}\n",
      n, num_queries, ExecutionContext::Get().num_threads(), scalar_s,
      batch_s, batch_s > 0.0 ? scalar_s / batch_s : 0.0,
      identical ? "true" : "false");
  Emit(line);
}

void WriteReportFile() {
  const char* path = std::getenv("DBTUNE_BENCH_GP_REPORT");
  if (path == nullptr || path[0] == '\0') path = "BENCH_GP.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open DBTUNE_BENCH_GP_REPORT path %s\n", path);
    return;
  }
  std::fwrite(g_report.data(), 1, g_report.size(), file);
  std::fclose(file);
  std::printf("report written to %s\n", path);
}

}  // namespace
}  // namespace dbtune

int main() {
  dbtune::bench::Banner("GP incremental-fit and batched-predict scaling",
                        "sequential BO fits at n in {100,250,500}, d=20; "
                        "acquisition scoring of 2000 candidates at n=500");
  // The incremental-fit counter proves the bordered-append path actually
  // ran (the identity check alone would also pass on silent fallback).
  dbtune::obs::SetMetricsEnabled(true);
  dbtune::BenchSequentialFits();
  dbtune::BenchBatchedPredict();
  dbtune::WriteReportFile();
  return 0;
}
