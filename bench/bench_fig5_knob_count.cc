// Reproduces Figure 5: performance improvement and tuning cost (iterations
// to reach the best configuration) as the number of tuned knobs grows,
// with knobs ranked by SHAP and tuned by vanilla BO for 600 iterations on
// SYSBENCH and JOB.

#include "bench_util.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 5: effect of the number of tuning knobs",
         "SHAP ranking, vanilla BO, 600 iterations, SYSBENCH + JOB");

  const size_t samples = ScaledSamples(6250, 600);
  const size_t iterations = ScaledIters(600, 120);
  const std::vector<size_t> knob_counts = {5, 10, 20, 50, 100, 197};

  for (WorkloadId workload : {WorkloadId::kSysbench, WorkloadId::kJob}) {
    DbmsSimulator sim(workload, HardwareInstance::kB, 1);
    std::printf("collecting %zu samples + SHAP ranking on %s ...\n", samples,
                WorkloadName(workload));
    const ImportanceData data = CollectImportanceData(&sim, samples, 21);
    const ImportanceInput input =
        MakeImportanceInput(sim.space(), data.configs, data.scores,
                            sim.EffectiveDefault(), data.default_score)
            .value();
    std::unique_ptr<ImportanceMeasure> shap =
        CreateImportanceMeasure(MeasurementType::kShap, 23);
    const std::vector<double> importance = shap->Rank(input).value();

    TablePrinter table({"knobs", "best improvement", "tuning cost "
                        "(iterations to best)"});
    for (size_t k : knob_counts) {
      const std::vector<size_t> knobs = TopKnobs(importance, k);
      const SessionSummary summary =
          RunSessions(workload, HardwareInstance::kB, knobs,
                      OptimizerType::kVanillaBo, iterations, ScaledRuns(3),
                      900 + k);
      table.AddRow({std::to_string(k),
                    TablePrinter::Num(summary.median_improvement, 1) + "%",
                    TablePrinter::Num(summary.median_best_iteration, 0)});
    }
    std::printf("\nFigure 5 — %s (paper: JOB flat improvement with rising "
                "cost; SYSBENCH peaks near top-20):\n",
                WorkloadName(workload));
    table.Print();
    std::printf("\n");
  }
  return 0;
}
