// Reproduces Table 8: knowledge-transfer frameworks. Pre-trains DDPG on
// five source workloads (SEATS, Voter, TATP, Smallbank, SIBench), reuses
// its training observations as the shared history (the paper's
// data-fairness protocol), then evaluates five baselines on three target
// workloads (SYSBENCH, TPC-C, Twitter): RGPE and workload mapping over
// SMAC and mixed-kernel BO, plus fine-tuned DDPG. Reports speedup,
// performance enhancement (PE) and absolute-performance ranking (APR).

#include "bench_util.h"

#include <functional>
#include <memory>

#include "transfer/fine_tune.h"
#include "transfer/rgpe.h"
#include "transfer/workload_mapping.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Table 8: knowledge-transfer frameworks",
         "sources {SEATS, Voter, TATP, Smallbank, SIBench} x 300 pretrain "
         "iters; targets {SYSBENCH, TPC-C, Twitter}; 200-iter sessions");

  const size_t iterations = ScaledIters(200, 60);
  const size_t pretrain_iterations = ScaledIters(300, 80);

  // Shared top-20 knob set across OLTP workloads (the paper selects it
  // with SHAP across workloads; we use the union ground truth of two
  // transactional probes for determinism).
  std::vector<size_t> knobs;
  {
    DbmsSimulator probe(WorkloadId::kTpcc, HardwareInstance::kB, 1);
    const std::vector<size_t> ranking = probe.surface().TunabilityRanking();
    knobs.assign(ranking.begin(), ranking.begin() + 20);
  }

  // --- Pre-train DDPG across the sources, collecting the repository.
  ObservationRepository repository;
  PretrainOptions pretrain;
  pretrain.iterations_per_source = pretrain_iterations;
  pretrain.seed = 71;
  std::printf("pre-training DDPG on 5 source workloads (%zu iters each) "
              "...\n",
              pretrain_iterations);
  Result<DdpgOptimizer::Weights> pretrained = PretrainDdpgOnSources(
      {WorkloadId::kSeats, WorkloadId::kVoter, WorkloadId::kTatp,
       WorkloadId::kSmallbank, WorkloadId::kSibench},
      knobs, pretrain, &repository);
  if (!pretrained.ok()) {
    std::printf("pretraining failed: %s\n",
                pretrained.status().ToString().c_str());
    return 1;
  }

  struct BaselineResult {
    std::string name;
    SessionResult session;
  };

  TablePrinter table({"target", "framework", "speedup", "PE", "absolute "
                      "improvement"});
  std::vector<std::string> baseline_names;
  // Per-target absolute improvements for the APR summary.
  std::vector<std::vector<double>> absolute_per_target;

  for (WorkloadId target :
       {WorkloadId::kTpcc, WorkloadId::kSysbench, WorkloadId::kTwitter}) {
    std::printf("tuning target %s ...\n", WorkloadName(target));
    // Base runs without transfer.
    auto run_with = [&](auto make_optimizer) {
      DbmsSimulator sim(target, HardwareInstance::kB, 301);
      TuningEnvironment env(&sim, knobs);
      OptimizerOptions options;
      options.seed = 73;
      std::unique_ptr<Optimizer> optimizer =
          make_optimizer(env.space(), options);
      return RunTuningSession(&env, optimizer.get(), iterations);
    };

    const SessionResult base_smac =
        run_with([](const ConfigurationSpace& s, OptimizerOptions o) {
          return CreateOptimizer(OptimizerType::kSmac, s, o);
        });
    const SessionResult base_mixed =
        run_with([](const ConfigurationSpace& s, OptimizerOptions o) {
          return CreateOptimizer(OptimizerType::kMixedKernelBo, s, o);
        });
    const SessionResult base_ddpg =
        run_with([](const ConfigurationSpace& s, OptimizerOptions o) {
          return CreateOptimizer(OptimizerType::kDdpg, s, o);
        });

    struct Spec {
      std::string name;
      const SessionResult* base;
      std::function<std::unique_ptr<Optimizer>(const ConfigurationSpace&,
                                               OptimizerOptions)> make;
    };
    const std::vector<Spec> specs = {
        {"RGPE (Mixed-Kernel BO)", &base_mixed,
         [&](const ConfigurationSpace& s, OptimizerOptions o) {
           return std::unique_ptr<Optimizer>(new RgpeOptimizer(
               s, o, &repository, TransferBase::kMixedKernelBo));
         }},
        {"RGPE (SMAC)", &base_smac,
         [&](const ConfigurationSpace& s, OptimizerOptions o) {
           return std::unique_ptr<Optimizer>(
               new RgpeOptimizer(s, o, &repository, TransferBase::kSmac));
         }},
        {"Mapping (Mixed-Kernel BO)", &base_mixed,
         [&](const ConfigurationSpace& s, OptimizerOptions o) {
           return std::unique_ptr<Optimizer>(new WorkloadMappingOptimizer(
               s, o, &repository, TransferBase::kMixedKernelBo));
         }},
        {"Mapping (SMAC)", &base_smac,
         [&](const ConfigurationSpace& s, OptimizerOptions o) {
           return std::unique_ptr<Optimizer>(new WorkloadMappingOptimizer(
               s, o, &repository, TransferBase::kSmac));
         }},
        {"Fine-tune (DDPG)", &base_ddpg,
         [&](const ConfigurationSpace& s, OptimizerOptions o) {
           return MakeFineTunedDdpg(s, o, *pretrained).value();
         }},
    };

    std::vector<double> absolutes;
    baseline_names.clear();
    for (const Spec& spec : specs) {
      const SessionResult transfer = run_with(spec.make);
      const auto speedup =
          TransferSpeedup(spec.base->objective_trace,
                          transfer.objective_trace,
                          ObjectiveKind::kThroughput);
      const double pe = PerformanceEnhancement(spec.base->final_objective,
                                               transfer.final_objective,
                                               ObjectiveKind::kThroughput);
      table.AddRow({WorkloadName(target), spec.name,
                    speedup ? TablePrinter::Num(*speedup, 2) : "x",
                    TablePrinter::Num(pe * 100.0, 2) + "%",
                    TablePrinter::Num(transfer.final_improvement, 1) + "%"});
      absolutes.push_back(transfer.final_improvement);
      baseline_names.push_back(spec.name);
    }
    absolute_per_target.push_back(std::move(absolutes));
  }

  std::printf("\nTable 8 — transfer frameworks (paper: RGPE best, mapping "
              "prone to negative transfer, fine-tune unstable):\n");
  table.Print();

  const std::vector<double> apr = AverageRanks(absolute_per_target, true);
  TablePrinter apr_table({"framework", "avg absolute-performance rank"});
  for (size_t i = 0; i < apr.size(); ++i) {
    apr_table.AddRow({baseline_names[i], TablePrinter::Num(apr[i], 2)});
  }
  std::printf("\n");
  apr_table.Print();
  return 0;
}
