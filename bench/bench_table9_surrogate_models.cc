// Reproduces Table 9: regression performance (10-fold cross-validated
// RMSE and R²) of six candidate surrogate models — random forest, gradient
// boosting, SVR, NuSVR-equivalent, k-NN and ridge regression — on the two
// tuning datasets of the §8 benchmark: the medium (top-20) SYSBENCH space
// and the small (top-5) JOB space, 6250 samples each.
//
// Expected shape: the tree ensembles (RF, GB) fit best; ridge worst.

#include "bench_util.h"

#include "benchmk/data_collector.h"
#include "surrogate/cross_validation.h"
#include "surrogate/gradient_boosting.h"
#include "surrogate/knn.h"
#include "surrogate/random_forest.h"
#include "surrogate/ridge.h"
#include "surrogate/svr.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Table 9: surrogate regression performance",
         "6250 samples; 10-fold CV; RF/GB/SVR/NuSVR/KNN/RR; SYSBENCH "
         "medium + JOB small spaces");

  const size_t samples = ScaledSamples(6250, 1000);
  const size_t folds = Scale() >= 0.8 ? 10 : 5;

  struct ModelSpec {
    const char* name;
    RegressorFactory factory;
  };
  const std::vector<ModelSpec> models = {
      {"RF",
       [] { return std::unique_ptr<Regressor>(new RandomForest()); }},
      {"GB",
       [] { return std::unique_ptr<Regressor>(new GradientBoosting()); }},
      {"SVR",
       [] {
         return std::unique_ptr<Regressor>(new SupportVectorRegressor());
       }},
      // NuSVR optimizes the same epsilon-insensitive objective with the
      // tube width reparameterized; we model it with a tighter tube.
      {"NuSVR",
       [] {
         SvrOptions options;
         options.epsilon = 0.02;
         return std::unique_ptr<Regressor>(
             new SupportVectorRegressor(options));
       }},
      {"KNN", [] { return std::unique_ptr<Regressor>(new KnnRegressor()); }},
      {"RR",
       [] { return std::unique_ptr<Regressor>(new RidgeRegression()); }},
  };

  struct DatasetSpec {
    const char* name;
    WorkloadId workload;
    size_t knobs;
  };
  for (const DatasetSpec& spec :
       {DatasetSpec{"SYSBENCH (medium space)", WorkloadId::kSysbench, 20},
        DatasetSpec{"JOB (small space)", WorkloadId::kJob, 5}}) {
    DbmsSimulator sim(spec.workload, HardwareInstance::kB, 81);
    const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
    const std::vector<size_t> knobs(ranking.begin(),
                                    ranking.begin() + spec.knobs);
    CollectionOptions collection;
    collection.lhs_samples = samples;
    collection.optimizer_guided_samples = samples / 5;
    collection.seed = 83;
    std::printf("collecting %zu samples on %s ...\n",
                collection.lhs_samples + collection.optimizer_guided_samples,
                spec.name);
    Result<TuningDataset> dataset = CollectDataset(&sim, knobs, collection);
    if (!dataset.ok()) {
      std::printf("error: %s\n", dataset.status().ToString().c_str());
      return 1;
    }

    TablePrinter table({"model", "RMSE", "R^2"});
    for (const ModelSpec& model : models) {
      Rng cv_rng(85);
      Result<RegressionQuality> quality = CrossValidate(
          model.factory, dataset->unit_x, dataset->objectives, folds,
          cv_rng);
      if (!quality.ok()) {
        std::printf("%s failed: %s\n", model.name,
                    quality.status().ToString().c_str());
        continue;
      }
      table.AddRow({model.name, TablePrinter::Num(quality->rmse, 2),
                    TablePrinter::Num(quality->r_squared * 100.0, 1) + "%"});
    }
    std::printf("\nTable 9 — %s (%zu-fold CV; paper: RF and GB best):\n",
                spec.name, folds);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
