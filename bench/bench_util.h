#ifndef DBTUNE_BENCH_BENCH_UTIL_H_
#define DBTUNE_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction benches. Every bench
// follows the paper's protocol but scales budgets by DBTUNE_BENCH_SCALE
// (default 0.3) so the full suite runs in minutes on a laptop; set
// DBTUNE_BENCH_SCALE=1 to replicate the paper's iteration counts exactly.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/tuning_session.h"
#include "dbms/environment.h"
#include "importance/importance.h"
#include "sampling/latin_hypercube.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dbtune::bench {

/// Budget multiplier from DBTUNE_BENCH_SCALE (clamped to [0.05, 2]).
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("DBTUNE_BENCH_SCALE");
    double value = env ? std::atof(env) : 0.3;
    if (value <= 0.0) value = 0.3;
    return std::clamp(value, 0.05, 2.0);
  }();
  return scale;
}

/// Paper iteration count scaled down, with a floor.
inline size_t ScaledIters(size_t paper_iterations, size_t floor = 40) {
  const auto scaled =
      static_cast<size_t>(static_cast<double>(paper_iterations) * Scale());
  return std::max(scaled, std::min(floor, paper_iterations));
}

/// Paper sample count scaled down, with a floor.
inline size_t ScaledSamples(size_t paper_samples, size_t floor = 300) {
  const auto scaled =
      static_cast<size_t>(static_cast<double>(paper_samples) * Scale());
  return std::max(scaled, std::min(floor, paper_samples));
}

/// Paper repetition count scaled (>= 2 so quartiles exist).
inline int ScaledRuns(int paper_runs) {
  return std::max(2, static_cast<int>(paper_runs * Scale() + 0.5));
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_setup) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper setup: %s\n", paper_setup);
  std::printf("scale: %.2f (set DBTUNE_BENCH_SCALE to change)\n\n", Scale());
}

/// Collects an importance-measurement training set over the full catalog:
/// LHS samples evaluated on the simulator (the paper's 6250-sample
/// protocol, scaled).
struct ImportanceData {
  std::vector<Configuration> configs;
  std::vector<double> scores;
  double default_score = 0.0;
};

inline ImportanceData CollectImportanceData(DbmsSimulator* sim,
                                            size_t samples, uint64_t seed) {
  TuningEnvironment env(sim);
  Rng rng(seed);
  ImportanceData data;
  for (const Configuration& c :
       LatinHypercubeSample(sim->space(), samples, rng)) {
    const Observation obs = env.Evaluate(c);
    data.configs.push_back(obs.config);
    data.scores.push_back(obs.score);
  }
  data.default_score = env.default_score();
  return data;
}

/// Median final improvement over several seeded sessions of one optimizer
/// on one knob subset; optionally fills best-so-far traces (median run).
struct SessionSummary {
  double median_improvement = 0.0;
  double median_best_iteration = 0.0;
  std::vector<SessionResult> runs;
};

inline SessionSummary RunSessions(WorkloadId workload,
                                  HardwareInstance hardware,
                                  const std::vector<size_t>& knobs,
                                  OptimizerType optimizer, size_t iterations,
                                  int num_runs, uint64_t seed_base) {
  SessionSummary summary;
  summary.runs.resize(static_cast<size_t>(num_runs));
  // Replications are fully independent (each owns its simulator and its
  // seed) and land in their run slot, so the summary is identical to the
  // sequential loop at any pool size.
  ParallelFor(GlobalPool(), 0, static_cast<size_t>(num_runs), /*grain=*/1,
              [&](size_t begin, size_t end) {
                for (size_t run = begin; run < end; ++run) {
                  DbmsSimulator sim(workload, hardware,
                                    seed_base + 1000 * run);
                  summary.runs[run] = RunTuningSession(
                      &sim, knobs, optimizer, iterations, seed_base + run);
                }
              });
  std::vector<double> improvements, best_iters;
  for (const SessionResult& run : summary.runs) {
    improvements.push_back(run.final_improvement);
    best_iters.push_back(static_cast<double>(run.best_iteration));
  }
  summary.median_improvement = Median(improvements);
  summary.median_best_iteration = Median(best_iters);
  return summary;
}

}  // namespace dbtune::bench

#endif  // DBTUNE_BENCH_BENCH_UTIL_H_
