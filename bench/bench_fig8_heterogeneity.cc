// Reproduces Figure 8: the knob-heterogeneity comparison on JOB — a
// control group tuning the top-20 *continuous/numeric* knobs versus a test
// group tuning the top-5 categorical + top-15 integer knobs, with SMAC,
// mixed-kernel BO, vanilla BO and DDPG.
//
// Expected shape: vanilla BO and mixed-kernel BO are comparable on the
// continuous space but diverge on the heterogeneous one, where the
// Hamming kernel handles categorical knobs and the RBF ordinal encoding
// does not; SMAC handles both.

#include "bench_util.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 8: continuous vs heterogeneous configuration space",
         "JOB; control = top-20 continuous knobs, test = top-5 categorical "
         "+ top-15 integer knobs; SMAC / mixed BO / vanilla BO / DDPG");

  const size_t iterations = ScaledIters(200, 60);
  const int runs = ScaledRuns(3);

  // SHAP ranking over the full space.
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 1);
  const ImportanceData data =
      CollectImportanceData(&sim, ScaledSamples(6250, 600), 61);
  const ImportanceInput input =
      MakeImportanceInput(sim.space(), data.configs, data.scores,
                          sim.EffectiveDefault(), data.default_score)
          .value();
  std::unique_ptr<ImportanceMeasure> shap =
      CreateImportanceMeasure(MeasurementType::kShap, 63);
  const std::vector<double> importance = shap->Rank(input).value();
  const std::vector<size_t> ranked =
      TopKnobs(importance, sim.space().dimension());

  // Control: top-20 numeric knobs. Test: top-5 categorical + top-15
  // numeric (integer) knobs.
  std::vector<size_t> continuous_space, heterogeneous_space;
  {
    std::vector<size_t> top_categorical, top_numeric;
    for (size_t knob : ranked) {
      if (sim.space().knob(knob).is_categorical()) {
        if (top_categorical.size() < 5) top_categorical.push_back(knob);
      } else {
        top_numeric.push_back(knob);
      }
    }
    continuous_space.assign(top_numeric.begin(), top_numeric.begin() + 20);
    heterogeneous_space = top_categorical;
    heterogeneous_space.insert(heterogeneous_space.end(),
                               top_numeric.begin(), top_numeric.begin() + 15);
  }

  const std::vector<OptimizerType> optimizers = {
      OptimizerType::kSmac, OptimizerType::kMixedKernelBo,
      OptimizerType::kVanillaBo, OptimizerType::kDdpg};

  for (const auto& [label, knobs] :
       {std::pair<const char*, const std::vector<size_t>*>{
            "(a) continuous space", &continuous_space},
        {"(b) heterogeneous space", &heterogeneous_space}}) {
    TablePrinter table({"iteration", "SMAC", "Mixed-Kernel BO", "Vanilla BO",
                        "DDPG"});
    std::vector<SessionSummary> summaries;
    for (OptimizerType optimizer : optimizers) {
      std::printf("running %s on %s ...\n", OptimizerTypeName(optimizer),
                  label);
      summaries.push_back(RunSessions(WorkloadId::kJob, HardwareInstance::kB,
                                      *knobs, optimizer, iterations, runs,
                                      810));
    }
    for (size_t i = iterations / 8; i <= iterations; i += iterations / 8) {
      const size_t idx = std::min(i, iterations) - 1;
      std::vector<std::string> row = {std::to_string(idx + 1)};
      for (const SessionSummary& summary : summaries) {
        std::vector<double> at;
        for (const SessionResult& run : summary.runs) {
          at.push_back(run.improvement_trace[idx]);
        }
        row.push_back(TablePrinter::Num(Median(at), 1) + "%");
      }
      table.AddRow(std::move(row));
    }
    std::printf("\nFigure 8 %s — median best-so-far latency improvement:\n",
                label);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
