// Reproduces Figure 4: sensitivity analysis of the importance
// measurements on SYSBENCH — (left) similarity score (intersection-over-
// union of the top-5 knob set vs. the full-data baseline) and (right) R²
// of each measurement's surrogate, as functions of the number of training
// samples, averaged over repetitions.

#include "bench_util.h"

#include "importance/ablation.h"
#include "importance/fanova.h"
#include "importance/gini.h"
#include "importance/lasso.h"
#include "importance/shap.h"

namespace {

using namespace dbtune;

// Rank + fit-quality in one call (the R² accessors are per-class).
struct RankOutcome {
  std::vector<double> importance;
  double r_squared = 0.0;
};

RankOutcome RankWith(MeasurementType type, const ImportanceInput& input,
                     uint64_t seed) {
  RankOutcome out;
  switch (type) {
    case MeasurementType::kLasso: {
      LassoImportance m(LassoOptions{}, seed);
      out.importance = m.Rank(input).value();
      out.r_squared = m.last_fit_r_squared();
      return out;
    }
    case MeasurementType::kGini: {
      GiniImportance m(seed);
      out.importance = m.Rank(input).value();
      out.r_squared = m.last_fit_r_squared();
      return out;
    }
    case MeasurementType::kFanova: {
      FanovaImportance m(FanovaOptions{}, seed);
      out.importance = m.Rank(input).value();
      out.r_squared = m.last_fit_r_squared();
      return out;
    }
    case MeasurementType::kAblation: {
      AblationImportance m(AblationOptions{}, seed);
      out.importance = m.Rank(input).value();
      out.r_squared = m.last_fit_r_squared();
      return out;
    }
    case MeasurementType::kShap: {
      ShapImportance m(ShapOptions{}, seed);
      out.importance = m.Rank(input).value();
      out.r_squared = m.last_fit_r_squared();
      return out;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 4: sensitivity analysis of importance measurements",
         "SYSBENCH, subsample sizes vs 6250-sample baseline, 10 repeats");

  const size_t baseline_samples = ScaledSamples(6250, 800);
  const int repeats = std::max(2, static_cast<int>(10 * Scale() + 0.5));

  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  std::printf("collecting %zu baseline samples ...\n", baseline_samples);
  const ImportanceData data =
      CollectImportanceData(&sim, baseline_samples, 7);
  const ImportanceInput baseline_input =
      MakeImportanceInput(sim.space(), data.configs, data.scores,
                          sim.EffectiveDefault(), data.default_score)
          .value();

  // Baseline top-5 sets on the full data.
  std::vector<std::vector<size_t>> baseline_top5;
  for (MeasurementType type : AllMeasurements()) {
    baseline_top5.push_back(
        TopKnobs(RankWith(type, baseline_input, 5).importance, 5));
  }

  std::vector<size_t> subset_sizes;
  for (double frac : {0.1, 0.2, 0.4, 0.7}) {
    subset_sizes.push_back(
        static_cast<size_t>(frac * static_cast<double>(baseline_samples)));
  }

  TablePrinter similarity({"samples", "Lasso", "Gini", "fANOVA", "Ablation",
                           "SHAP"});
  TablePrinter fit({"samples", "Lasso", "Gini", "fANOVA", "Ablation",
                    "SHAP"});
  Rng subsample_rng(99);
  for (size_t n : subset_sizes) {
    std::vector<double> iou_sum(5, 0.0), r2_sum(5, 0.0);
    for (int rep = 0; rep < repeats; ++rep) {
      const std::vector<size_t> pick =
          subsample_rng.SampleWithoutReplacement(data.configs.size(), n);
      ImportanceInput input = baseline_input;
      input.unit_x.clear();
      input.scores.clear();
      for (size_t i : pick) {
        input.unit_x.push_back(baseline_input.unit_x[i]);
        input.scores.push_back(baseline_input.scores[i]);
      }
      size_t m = 0;
      for (MeasurementType type : AllMeasurements()) {
        const RankOutcome outcome = RankWith(type, input, 100 + rep);
        iou_sum[m] += IntersectionOverUnion(TopKnobs(outcome.importance, 5),
                                            baseline_top5[m]);
        r2_sum[m] += outcome.r_squared;
        ++m;
      }
    }
    std::vector<std::string> iou_row = {std::to_string(n)};
    std::vector<std::string> r2_row = {std::to_string(n)};
    for (size_t m = 0; m < 5; ++m) {
      iou_row.push_back(TablePrinter::Num(iou_sum[m] / repeats, 3));
      r2_row.push_back(TablePrinter::Num(r2_sum[m] / repeats, 3));
    }
    similarity.AddRow(std::move(iou_row));
    fit.AddRow(std::move(r2_row));
  }

  std::printf("\nFigure 4 (left) — top-5 similarity score vs baseline "
              "(paper: Gini most stable, Ablation least):\n");
  similarity.Print();
  std::printf("\nFigure 4 (right) — surrogate R² "
              "(paper: Lasso fails to model the surface, tree models do "
              "well):\n");
  fit.Print();
  return 0;
}
