// Reproduces Figure 6: incremental knob selection — OtterTune's
// increasing heuristic and Tuneful's decreasing heuristic versus fixed
// top-5 and top-20 knob sets, tuned with vanilla BO on SYSBENCH and JOB.

#include "bench_util.h"

#include "importance/incremental.h"

int main() {
  using namespace dbtune;
  using namespace dbtune::bench;
  Banner("Figure 6: incremental knob selection",
         "increase {5,10,15,20} / decrease {40,20,10,5} vs fixed top-5 and "
         "top-20, vanilla BO, 200 iterations");

  const size_t samples = ScaledSamples(6250, 600);
  const size_t total_iterations = ScaledIters(200, 80);
  const size_t phase_iterations = total_iterations / 4;

  for (WorkloadId workload : {WorkloadId::kSysbench, WorkloadId::kJob}) {
    DbmsSimulator sim(workload, HardwareInstance::kB, 1);
    const ImportanceData data = CollectImportanceData(&sim, samples, 31);
    const ImportanceInput input =
        MakeImportanceInput(sim.space(), data.configs, data.scores,
                            sim.EffectiveDefault(), data.default_score)
            .value();
    std::unique_ptr<ImportanceMeasure> shap =
        CreateImportanceMeasure(MeasurementType::kShap, 33);
    const std::vector<double> importance = shap->Rank(input).value();
    const std::vector<size_t> ranked =
        TopKnobs(importance, sim.space().dimension());

    // Incremental sessions.
    auto run_incremental = [&](IncrementalOptions options) {
      options.iterations_per_phase = phase_iterations;
      options.seed = 41;
      DbmsSimulator fresh(workload, HardwareInstance::kB, 2);
      return RunIncrementalSession(&fresh, ranked, options).value();
    };
    const IncrementalResult increasing =
        run_incremental(IncreasingSchedule());
    const IncrementalResult decreasing =
        run_incremental(DecreasingSchedule());

    // Fixed baselines.
    const std::vector<size_t> top5(ranked.begin(), ranked.begin() + 5);
    const std::vector<size_t> top20(ranked.begin(), ranked.begin() + 20);
    DbmsSimulator sim5(workload, HardwareInstance::kB, 3);
    const SessionResult fixed5 = RunTuningSession(
        &sim5, top5, OptimizerType::kVanillaBo, total_iterations, 43);
    DbmsSimulator sim20(workload, HardwareInstance::kB, 3);
    const SessionResult fixed20 = RunTuningSession(
        &sim20, top20, OptimizerType::kVanillaBo, total_iterations, 43);

    TablePrinter table({"iteration", "increase", "decrease", "fixed top-5",
                        "fixed top-20"});
    const size_t trace_len =
        std::min({increasing.improvement_trace.size(),
                  decreasing.improvement_trace.size(),
                  fixed5.improvement_trace.size(),
                  fixed20.improvement_trace.size()});
    for (size_t i = trace_len / 8; i <= trace_len; i += trace_len / 8) {
      const size_t idx = std::min(i, trace_len) - 1;
      table.AddRow(
          {std::to_string(idx + 1),
           TablePrinter::Num(increasing.improvement_trace[idx], 1) + "%",
           TablePrinter::Num(decreasing.improvement_trace[idx], 1) + "%",
           TablePrinter::Num(fixed5.improvement_trace[idx], 1) + "%",
           TablePrinter::Num(fixed20.improvement_trace[idx], 1) + "%"});
    }
    std::printf("\nFigure 6 — %s best-so-far improvement (paper: for JOB "
                "fixed top-5 wins; for SYSBENCH increasing beats "
                "decreasing):\n",
                WorkloadName(workload));
    table.Print();
    std::printf("\n");
  }
  return 0;
}
