// Reproduces Figure 9: algorithm overhead — wall-clock time an optimizer
// needs to generate the next configuration, as a function of how many
// observations it has already accumulated (JOB, medium 20-knob space).
//
// Implemented with google-benchmark: each benchmark instantiates the
// optimizer, replays `history` observations into it, and times Suggest().
//
// Expected shape: the global GP methods (vanilla / mixed-kernel BO) grow
// cubically with the iteration count; SMAC, TPE, DDPG and GA stay flat;
// TuRBO stays moderate thanks to its local models.

#include <benchmark/benchmark.h>

#include "dbms/environment.h"
#include "knobs/catalog.h"
#include "optimizer/optimizer.h"
#include "sampling/latin_hypercube.h"

namespace {

using namespace dbtune;

// Medium configuration space: ground-truth top-20 tunable knobs of JOB.
const ConfigurationSpace& MediumSpace() {
  static const ConfigurationSpace* space = [] {
    DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 1);
    const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
    const std::vector<size_t> top20(ranking.begin(), ranking.begin() + 20);
    return new ConfigurationSpace(sim.space().Project(top20));
  }();
  return *space;
}

void BM_SuggestOverhead(benchmark::State& state, OptimizerType type) {
  const size_t history = static_cast<size_t>(state.range(0));
  const ConfigurationSpace& space = MediumSpace();

  // Pre-generate a deterministic observation history.
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 2);
  const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
  const std::vector<size_t> top20(ranking.begin(), ranking.begin() + 20);
  TuningEnvironment env(&sim, top20);
  Rng rng(3);
  std::vector<Configuration> configs;
  std::vector<Observation> observations;
  for (const Configuration& c : LatinHypercubeSample(space, history, rng)) {
    observations.push_back(env.Evaluate(c));
  }

  for (auto _ : state) {
    state.PauseTiming();
    OptimizerOptions options;
    options.seed = 7;
    // The history is injected directly, so skip the LHS warm start —
    // Suggest() must exercise the model-fit + acquisition path.
    options.initial_design = 0;
    std::unique_ptr<Optimizer> optimizer = CreateOptimizer(type, space,
                                                           options);
    for (const Observation& obs : observations) {
      optimizer->ObserveWithMetrics(obs.config, obs.score,
                                    obs.internal_metrics);
    }
    state.ResumeTiming();
    Configuration suggestion = optimizer->Suggest();
    benchmark::DoNotOptimize(suggestion);
  }
  state.counters["history"] = static_cast<double>(history);
}

void RegisterAll() {
  struct Entry {
    const char* name;
    OptimizerType type;
  };
  const Entry entries[] = {
      {"VanillaBO", OptimizerType::kVanillaBo},
      {"MixedKernelBO", OptimizerType::kMixedKernelBo},
      {"SMAC", OptimizerType::kSmac},
      {"TPE", OptimizerType::kTpe},
      {"TuRBO", OptimizerType::kTurbo},
      {"DDPG", OptimizerType::kDdpg},
      {"GA", OptimizerType::kGa},
  };
  for (const Entry& entry : entries) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("Fig9/Suggest/") + entry.name).c_str(),
        [type = entry.type](benchmark::State& state) {
          BM_SuggestOverhead(state, type);
        });
    bench->Arg(50)->Arg(100)->Arg(200)->Arg(400);
    bench->Unit(benchmark::kMillisecond);
    bench->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 9: algorithm overhead per suggestion ===\n");
  std::printf("paper shape: GP-based optimizers grow cubically with the\n"
              "number of observations (>10s after 200 iters on the paper's\n"
              "hardware); RF/TPE/GA/DDPG stay near-constant.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
