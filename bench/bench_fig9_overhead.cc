// Reproduces Figure 9: algorithm overhead — wall-clock time an optimizer
// needs to generate the next configuration, as a function of how many
// observations it has already accumulated (JOB, medium 20-knob space).
//
// Implemented with google-benchmark: each benchmark instantiates the
// optimizer, replays `history` observations into it, and times Suggest().
//
// Expected shape: the global GP methods (vanilla / mixed-kernel BO) grow
// cubically with the iteration count; SMAC, TPE, DDPG and GA stay flat;
// TuRBO stays moderate thanks to its local models.

// In addition to the google-benchmark suite, the binary opens with a
// thread-scaling report: GP fit, RF fit, and one full BO iteration timed
// at 1, 2, and hardware_concurrency() pool threads, emitted as JSON lines
// so the bench trajectory can track the parallel-layer speedup. Timing
// flows through the obs metrics registry (not ad-hoc clock reads): each
// task reports its total seconds plus a per-phase breakdown from the
// instrumented gp.fit / gp.predict / forest.fit / optimizer.suggest.*
// histograms. Set DBTUNE_FIG9_REPORT=<path> to also write the JSON lines
// to a file (CI uploads it as an artifact).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <utility>

#include "core/tuning_session.h"
#include "dbms/environment.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "knobs/catalog.h"
#include "optimizer/optimizer.h"
#include "sampling/latin_hypercube.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/random_forest.h"
#include "util/thread_pool.h"

namespace {

using namespace dbtune;

// Medium configuration space: ground-truth top-20 tunable knobs of JOB.
const ConfigurationSpace& MediumSpace() {
  static const ConfigurationSpace* space = [] {
    DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 1);
    const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
    const std::vector<size_t> top20(ranking.begin(), ranking.begin() + 20);
    return new ConfigurationSpace(sim.space().Project(top20));
  }();
  return *space;
}

void BM_SuggestOverhead(benchmark::State& state, OptimizerType type) {
  const size_t history = static_cast<size_t>(state.range(0));
  const ConfigurationSpace& space = MediumSpace();

  // Pre-generate a deterministic observation history.
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 2);
  const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
  const std::vector<size_t> top20(ranking.begin(), ranking.begin() + 20);
  TuningEnvironment env(&sim, top20);
  Rng rng(3);
  std::vector<Configuration> configs;
  std::vector<Observation> observations;
  for (const Configuration& c : LatinHypercubeSample(space, history, rng)) {
    observations.push_back(env.Evaluate(c));
  }

  for (auto _ : state) {
    state.PauseTiming();
    OptimizerOptions options;
    options.seed = 7;
    // The history is injected directly, so skip the LHS warm start —
    // Suggest() must exercise the model-fit + acquisition path.
    options.initial_design = 0;
    std::unique_ptr<Optimizer> optimizer = CreateOptimizer(type, space,
                                                           options);
    for (const Observation& obs : observations) {
      optimizer->ObserveWithMetrics(obs.config, obs.score,
                                    obs.internal_metrics);
    }
    state.ResumeTiming();
    Configuration suggestion = optimizer->Suggest();
    benchmark::DoNotOptimize(suggestion);
  }
  state.counters["history"] = static_cast<double>(history);
}

void RegisterAll() {
  struct Entry {
    const char* name;
    OptimizerType type;
  };
  const Entry entries[] = {
      {"VanillaBO", OptimizerType::kVanillaBo},
      {"MixedKernelBO", OptimizerType::kMixedKernelBo},
      {"SMAC", OptimizerType::kSmac},
      {"TPE", OptimizerType::kTpe},
      {"TuRBO", OptimizerType::kTurbo},
      {"DDPG", OptimizerType::kDdpg},
      {"GA", OptimizerType::kGa},
  };
  for (const Entry& entry : entries) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("Fig9/Suggest/") + entry.name).c_str(),
        [type = entry.type](benchmark::State& state) {
          BM_SuggestOverhead(state, type);
        });
    bench->Arg(50)->Arg(100)->Arg(200)->Arg(400);
    bench->Unit(benchmark::kMillisecond);
    bench->Iterations(3);
  }
}

// --- Thread-scaling report ------------------------------------------------

FeatureMatrix RandomInputs(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x(n, std::vector<double>(d));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  return x;
}

std::vector<double> SyntheticTargets(const FeatureMatrix& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double s = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      s += std::sin(4.0 * row[j]) / static_cast<double>(j + 1);
    }
    y.push_back(s);
  }
  return y;
}

// One scaling task: total seconds, output checksum, and the per-phase
// seconds attributed by the obs registry. The checksum is compared across
// thread counts to assert bit-identical results.
struct TaskResult {
  double seconds = 0.0;
  double checksum = 0.0;
  std::vector<std::pair<std::string, double>> phases;
};

double HistogramSum(const std::string& name) {
  const dbtune::obs::Histogram* hist =
      dbtune::obs::MetricsRegistry::Get().FindHistogram(name);
  return hist == nullptr ? 0.0 : hist->sum_seconds();
}

// Runs `body` (which returns the checksum) and attributes its cost: total
// seconds from the obs clock, per-phase seconds as the delta of each named
// histogram's sum across the run.
TaskResult MeasureWithRegistry(const std::vector<std::string>& phase_names,
                               const std::function<double()>& body) {
  std::vector<double> before(phase_names.size());
  for (size_t i = 0; i < phase_names.size(); ++i) {
    before[i] = HistogramSum(phase_names[i]);
  }
  TaskResult result;
  const double start = obs::MonotonicSeconds();
  result.checksum = body();
  result.seconds = obs::MonotonicSeconds() - start;
  for (size_t i = 0; i < phase_names.size(); ++i) {
    result.phases.emplace_back(phase_names[i],
                               HistogramSum(phase_names[i]) - before[i]);
  }
  return result;
}

TaskResult TimeGpFit(const FeatureMatrix& x, const std::vector<double>& y,
                     const FeatureMatrix& queries) {
  return MeasureWithRegistry({"gp.fit", "gp.predict"}, [&] {
    GaussianProcessOptions options;
    options.hyperopt_every = 1;
    GaussianProcess gp(std::make_unique<Matern52Kernel>(), options);
    if (!gp.Fit(x, y).ok()) return 0.0;
    double checksum = gp.log_marginal_likelihood();
    for (const auto& q : queries) {
      double mean = 0.0, var = 0.0;
      gp.PredictMeanVar(q, &mean, &var);
      checksum += mean + var;
    }
    return checksum;
  });
}

TaskResult TimeRfFit(const FeatureMatrix& x, const std::vector<double>& y,
                     const FeatureMatrix& queries) {
  return MeasureWithRegistry({"forest.fit"}, [&] {
    RandomForestOptions options;
    options.num_trees = 100;
    options.seed = 97;
    RandomForest forest(options);
    if (!forest.Fit(x, y).ok()) return 0.0;
    double checksum = 0.0;
    for (const auto& q : queries) {
      double mean = 0.0, var = 0.0;
      forest.PredictMeanVar(q, &mean, &var);
      checksum += mean + var;
    }
    return checksum;
  });
}

// One full BO iteration (surrogate fit + acquisition maximization) on a
// 200-observation history — the per-iteration wall clock that Figure 9
// tracks, for the optimizer `type`. `suggest_histogram` names the
// optimizer's instrumented suggest histogram for the phase breakdown.
TaskResult TimeBoIteration(OptimizerType type,
                           const std::string& suggest_histogram,
                           const std::vector<Observation>& observations) {
  const ConfigurationSpace& space = MediumSpace();
  OptimizerOptions options;
  options.seed = 7;
  options.initial_design = 0;
  std::unique_ptr<Optimizer> optimizer = CreateOptimizer(type, space, options);
  for (const Observation& obs : observations) {
    optimizer->ObserveWithMetrics(obs.config, obs.score,
                                  obs.internal_metrics);
  }
  return MeasureWithRegistry(
      {suggest_histogram, "gp.fit", "gp.predict", "forest.fit"}, [&] {
        const Configuration suggestion = optimizer->Suggest();
        double checksum = 0.0;
        for (size_t i = 0; i < suggestion.size(); ++i) {
          checksum += suggestion[i] * static_cast<double>(i + 1);
        }
        return checksum;
      });
}

// The JSON report accumulates here; it is printed line by line and, when
// DBTUNE_FIG9_REPORT names a file, written there too for CI artifacts.
std::string g_report;

void EmitScalingLine(const char* task, size_t threads, const TaskResult& r,
                     const TaskResult& baseline) {
  const bool identical = r.checksum == baseline.checksum;
  std::string phases = "{";
  for (size_t i = 0; i < r.phases.size(); ++i) {
    char entry[128];
    std::snprintf(entry, sizeof(entry), "%s\"%s\":%.6f", i == 0 ? "" : ",",
                  r.phases[i].first.c_str(), r.phases[i].second);
    phases += entry;
  }
  phases += "}";
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"fig9_thread_scaling\",\"task\":\"%s\","
      "\"threads\":%zu,\"seconds\":%.6f,\"speedup_vs_1t\":%.3f,"
      "\"identical_to_1t\":%s,\"phases_s\":%s}\n",
      task, threads, r.seconds,
      r.seconds > 0.0 ? baseline.seconds / r.seconds : 0.0,
      identical ? "true" : "false", phases.c_str());
  std::printf("%s", line);
  g_report += line;
}

void MaybeWriteReportFile() {
  const char* path = std::getenv("DBTUNE_FIG9_REPORT");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open DBTUNE_FIG9_REPORT path %s\n", path);
    return;
  }
  std::fwrite(g_report.data(), 1, g_report.size(), file);
  std::fclose(file);
  std::printf("report written to %s\n", path);
}

void RunThreadScalingReport() {
  // Phase attribution needs the instrumented histograms live for the
  // duration of the report; restore the ambient state afterwards so the
  // google-benchmark section runs exactly as configured.
  const bool metrics_were_enabled = dbtune::obs::MetricsEnabled();
  dbtune::obs::SetMetricsEnabled(true);
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts = {1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);

  // GP fit at n=500 and RF fit with 100 trees: the two surrogate costs
  // that dominate a BO iteration.
  const FeatureMatrix gp_x = RandomInputs(500, 20, 101);
  const std::vector<double> gp_y = SyntheticTargets(gp_x);
  const FeatureMatrix rf_x = RandomInputs(1000, 20, 103);
  const std::vector<double> rf_y = SyntheticTargets(rf_x);
  const FeatureMatrix queries = RandomInputs(50, 20, 107);

  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 2);
  const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
  const std::vector<size_t> top20(ranking.begin(), ranking.begin() + 20);
  TuningEnvironment env(&sim, top20);
  Rng rng(3);
  std::vector<Observation> observations;
  for (const Configuration& c : LatinHypercubeSample(MediumSpace(), 200, rng)) {
    observations.push_back(env.Evaluate(c));
  }

  struct Task {
    const char* name;
    std::function<TaskResult()> run;
  };
  const std::vector<Task> tasks = {
      {"gp_fit_n500", [&] { return TimeGpFit(gp_x, gp_y, queries); }},
      {"rf_fit_100trees", [&] { return TimeRfFit(rf_x, rf_y, queries); }},
      {"bo_iteration_vanilla_bo",
       [&] {
         return TimeBoIteration(OptimizerType::kVanillaBo,
                                "optimizer.suggest.gp_bo", observations);
       }},
      {"bo_iteration_smac",
       [&] {
         return TimeBoIteration(OptimizerType::kSmac,
                                "optimizer.suggest.smac", observations);
       }},
  };

  std::printf("--- thread scaling (JSON) ---\n");
  for (const Task& task : tasks) {
    TaskResult baseline;
    for (size_t threads : thread_counts) {
      ExecutionContext::Get().SetNumThreads(threads);
      // Warm-up run absorbs pool spin-up and cache effects; the timed
      // run follows.
      task.run();
      const TaskResult r = task.run();
      if (threads == 1) baseline = r;
      EmitScalingLine(task.name, threads, r, baseline);
    }
  }
  ExecutionContext::Get().SetNumThreads(hw);
  MaybeWriteReportFile();
  dbtune::obs::SetMetricsEnabled(metrics_were_enabled);
  std::printf("\n");
}

// When DBTUNE_FIG9_SESSION_LOG names a file, run one diagnostics-on
// SMAC session over the Figure-9 workload (JOB, top-20 knobs) and write
// its per-iteration JSONL there — CI feeds the file to dbtune_report
// and uploads the rendered markdown as an artifact.
void MaybeEmitDiagnosticsSessionLog() {
  const char* path = std::getenv("DBTUNE_FIG9_SESSION_LOG");
  if (path == nullptr || path[0] == '\0') return;
  const bool metrics_were_enabled = dbtune::obs::MetricsEnabled();
  dbtune::obs::SetMetricsEnabled(true);

  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 2);
  const std::vector<size_t> ranking = sim.surface().TunabilityRanking();
  const std::vector<size_t> top20(ranking.begin(), ranking.begin() + 20);
  TuningEnvironment env(&sim, top20);
  OptimizerOptions options;
  options.seed = 7;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(OptimizerType::kSmac, env.space(), options);

  SessionControls controls;
  controls.session_log_path = path;
  controls.diagnostics = true;
  controls.session_label = "fig9";
  const SessionResult result =
      RunTuningSession(&env, optimizer.get(), /*iterations=*/40, controls);
  std::printf("diagnostics session log written to %s "
              "(best improvement %.2f%%)\n\n",
              path, result.final_improvement);
  dbtune::obs::SetMetricsEnabled(metrics_were_enabled);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 9: algorithm overhead per suggestion ===\n");
  std::printf("paper shape: GP-based optimizers grow cubically with the\n"
              "number of observations (>10s after 200 iters on the paper's\n"
              "hardware); RF/TPE/GA/DDPG stay near-constant.\n\n");
  MaybeEmitDiagnosticsSessionLog();
  RunThreadScalingReport();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
